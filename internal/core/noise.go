package core

import (
	"fmt"

	"github.com/freegap/freegap/internal/rng"
)

// NoiseKind selects the additive noise distribution used by the mechanisms.
// The privacy analysis (Definition 6 in the paper) only requires
// log(f(x)/f(y)) ≤ |x−y|/α, which Laplace, Discrete Laplace and Staircase all
// satisfy, so they are interchangeable from a privacy standpoint; they differ
// in utility and in tie behaviour on finite-precision machines.
type NoiseKind int

const (
	// NoiseLaplace is the continuous Laplace distribution used throughout the
	// paper's analysis (the default).
	NoiseLaplace NoiseKind = iota
	// NoiseDiscreteLaplace is the Discrete Laplace distribution over multiples
	// of a base γ, discussed in the paper's "implementation issues" and
	// Appendix A.1.
	NoiseDiscreteLaplace
	// NoiseStaircase is the staircase distribution of Geng and Viswanath.
	NoiseStaircase
)

// String implements fmt.Stringer.
func (k NoiseKind) String() string {
	switch k {
	case NoiseLaplace:
		return "laplace"
	case NoiseDiscreteLaplace:
		return "discrete-laplace"
	case NoiseStaircase:
		return "staircase"
	default:
		return fmt.Sprintf("NoiseKind(%d)", int(k))
	}
}

// noiser draws zero-mean noise with a given Laplace-equivalent scale b (the
// distribution satisfies log(f(x)/f(y)) ≤ |x−y|/b).
type noiser struct {
	kind NoiseKind
	base float64 // discretization base for NoiseDiscreteLaplace
}

// defaultDiscreteBase approximates machine epsilon for float64, the
// granularity the paper assumes when bounding tie probabilities.
const defaultDiscreteBase = 1.0 / (1 << 52)

func (n noiser) sample(src rng.Source, scale float64) float64 {
	switch n.kind {
	case NoiseDiscreteLaplace:
		base := n.base
		if base <= 0 {
			base = defaultDiscreteBase
		}
		return rng.DiscreteLaplace(src, 1/scale, base)
	case NoiseStaircase:
		eps := 1 / scale
		return rng.Staircase(src, eps, 1, rng.StaircaseOptimalGamma(eps))
	default:
		return rng.Laplace(src, scale)
	}
}

// fill populates dst with independent noise samples at the given scale in one
// vectorized pass: the Laplace default goes through rng.LaplaceVec (one scale
// check and one tight loop for the whole buffer), the discrete and staircase
// distributions fall back to per-element sampling. Draw order is ascending
// index either way, so a fixed seed produces the same stream as scalar
// sampling did.
func (n noiser) fill(src rng.Source, scale float64, dst []float64) {
	if n.kind == NoiseLaplace {
		rng.LaplaceVec(src, scale, len(dst), dst)
		return
	}
	for i := range dst {
		dst[i] = n.sample(src, scale)
	}
}
