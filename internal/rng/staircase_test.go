package rng

import (
	"math"
	"testing"
)

func TestStaircaseSymmetry(t *testing.T) {
	src := NewXoshiro(77)
	const n = 200000
	pos := 0
	var sum float64
	for i := 0; i < n; i++ {
		v := Staircase(src, 1, 1, 0.3)
		if v > 0 {
			pos++
		}
		sum += v
	}
	if math.Abs(float64(pos)/n-0.5) > 0.01 {
		t.Fatalf("positive fraction %v not near 0.5", float64(pos)/n)
	}
	if math.Abs(sum/n) > 0.05 {
		t.Fatalf("mean %v not near 0", sum/n)
	}
}

func TestStaircaseSpreadShrinksWithEps(t *testing.T) {
	meanAbs := func(eps float64) float64 {
		src := NewXoshiro(5)
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += math.Abs(Staircase(src, eps, 1, StaircaseOptimalGamma(eps)))
		}
		return sum / n
	}
	if meanAbs(2) >= meanAbs(0.3) {
		t.Fatal("staircase noise should shrink as epsilon grows")
	}
}

func TestStaircaseBeatsLaplaceAtHighEps(t *testing.T) {
	// At large epsilon the staircase mechanism has lower expected |noise|
	// than Laplace — the reason it is cited as the "optimal" mechanism.
	const eps = 4.0
	src := NewXoshiro(8)
	const n = 200000
	var lap, stair float64
	for i := 0; i < n; i++ {
		lap += math.Abs(Laplace(src, 1/eps))
		stair += math.Abs(Staircase(src, eps, 1, StaircaseOptimalGamma(eps)))
	}
	if stair >= lap {
		t.Fatalf("expected staircase mean |noise| (%v) < laplace (%v) at eps=%v", stair/n, lap/n, eps)
	}
}

func TestStaircasePanics(t *testing.T) {
	bad := []struct{ eps, delta, gamma float64 }{
		{0, 1, 0.5}, {1, 0, 0.5}, {1, 1, 0}, {1, 1, 1}, {-1, 1, 0.5},
	}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", c)
				}
			}()
			Staircase(NewXoshiro(1), c.eps, c.delta, c.gamma)
		}()
	}
}

func TestStaircaseOptimalGamma(t *testing.T) {
	// γ* = 1/(1+e^(ε/2)) is strictly decreasing in ε and bounded by 1/2.
	prev := 0.5
	for _, eps := range []float64{0.1, 0.5, 1, 2, 4} {
		g := StaircaseOptimalGamma(eps)
		if g <= 0 || g >= 0.5 {
			t.Fatalf("gamma %v for eps %v out of (0, 0.5)", g, eps)
		}
		if g >= prev {
			t.Fatalf("gamma should decrease with eps: %v then %v", prev, g)
		}
		prev = g
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eps=0")
		}
	}()
	StaircaseOptimalGamma(0)
}
