package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/freegap/freegap/internal/store"
)

// TestMmapArenaRestartSkipsRescan is the restart contract for -mmap-datasets:
// with the flag on, a restart serves every catalogued dataset from the
// persisted arena file (arena_mapped = true) without a second count scan;
// with the flag off, the same state directory restores by rescanning — and in
// both modes count_scans stays at exactly 1 and resolved queries keep
// working.
func TestMmapArenaRestartSkipsRescan(t *testing.T) {
	for _, mmap := range []bool{true, false} {
		name := "rescan"
		if mmap {
			name = "mmap"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s1, err := New(Config{TenantBudget: 100, Seed: 42, Workers: 1,
				Persist: openLog(t, dir), MmapDatasets: mmap})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			db, err := store.GenerateSynthetic("bmspos", 50, 7)
			if err != nil {
				t.Fatalf("GenerateSynthetic: %v", err)
			}
			if _, err := s1.RegisterDataset("pos", "synthetic:bmspos", db); err != nil {
				t.Fatalf("RegisterDataset: %v", err)
			}
			e1, err := s1.Datasets().Get("pos")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			wantCounts := append([]float64(nil), e1.ResolveAll()...)
			wantInfo := e1.Info()
			if wantInfo.CountScans != 1 {
				t.Fatalf("count scans after registration = %d, want 1", wantInfo.CountScans)
			}

			arenaFile := filepath.Join(dir, "arenas", "pos.arena")
			if _, err := os.Stat(arenaFile); mmap && err != nil {
				t.Fatalf("arena file not persisted: %v", err)
			} else if !mmap && err == nil {
				t.Fatalf("arena file persisted without MmapDatasets")
			}

			s1.Close()

			s2, err := New(Config{TenantBudget: 100, Seed: 42, Workers: 1,
				Persist: openLog(t, dir), MmapDatasets: mmap})
			if err != nil {
				t.Fatalf("restart New: %v", err)
			}
			defer s2.Close()
			e2, err := s2.Datasets().Get("pos")
			if err != nil {
				t.Fatalf("restored Get: %v", err)
			}
			info := e2.Info()
			if info.CountScans != 1 {
				t.Errorf("count scans after restart = %d, want 1", info.CountScans)
			}
			if info.ArenaMapped != mmap {
				t.Errorf("arena mapped = %v, want %v", info.ArenaMapped, mmap)
			}
			if info.Records != wantInfo.Records || info.Items != wantInfo.Items {
				t.Errorf("restored dims = %d records / %d items, want %d / %d",
					info.Records, info.Items, wantInfo.Records, wantInfo.Items)
			}
			got := e2.ResolveAll()
			if len(got) != len(wantCounts) {
				t.Fatalf("restored counts len = %d, want %d", len(got), len(wantCounts))
			}
			for i := range got {
				if got[i] != wantCounts[i] {
					t.Fatalf("restored count[%d] = %g, want %g", i, got[i], wantCounts[i])
				}
			}

			// The restored catalog must serve dataset-backed requests.
			req := httptest.NewRequest(http.MethodPost, "/v1/topk", strings.NewReader(
				`{"tenant":"acme","epsilon":1,"k":3,"dataset":"pos","queries":{"kind":"all_items"}}`))
			w := httptest.NewRecorder()
			s2.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("restored dataset topk status = %d, body = %s", w.Code, w.Body.String())
			}
		})
	}
}

// TestMmapArenaCorruptionFallsBackToRescan flips bytes in the persisted
// arena file and restarts: the load must fail closed into a clean rescan —
// correct counts, count_scans = 1, arena_mapped = false — never serve
// corrupt data.
func TestMmapArenaCorruptionFallsBackToRescan(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{TenantBudget: 100, Seed: 42, Workers: 1,
		Persist: openLog(t, dir), MmapDatasets: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db, err := store.GenerateSynthetic("kosarak", 40, 3)
	if err != nil {
		t.Fatalf("GenerateSynthetic: %v", err)
	}
	if _, err := s1.RegisterDataset("k", "synthetic:kosarak", db); err != nil {
		t.Fatalf("RegisterDataset: %v", err)
	}
	e1, _ := s1.Datasets().Get("k")
	wantCounts := append([]float64(nil), e1.ResolveAll()...)
	s1.Close()

	arenaFile := filepath.Join(dir, "arenas", "k.arena")
	raw, err := os.ReadFile(arenaFile)
	if err != nil {
		t.Fatalf("read arena: %v", err)
	}
	for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
		raw[i] ^= 0xA5
	}
	if err := os.WriteFile(arenaFile, raw, 0o644); err != nil {
		t.Fatalf("corrupt arena: %v", err)
	}

	s2, err := New(Config{TenantBudget: 100, Seed: 42, Workers: 1,
		Persist: openLog(t, dir), MmapDatasets: true})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer s2.Close()
	e2, err := s2.Datasets().Get("k")
	if err != nil {
		t.Fatalf("restored Get: %v", err)
	}
	info := e2.Info()
	if info.ArenaMapped {
		t.Error("corrupt arena was served mapped")
	}
	if info.CountScans != 1 {
		t.Errorf("count scans after corrupt-arena restart = %d, want 1", info.CountScans)
	}
	got := e2.ResolveAll()
	for i := range got {
		if got[i] != wantCounts[i] {
			t.Fatalf("rescanned count[%d] = %g, want %g", i, got[i], wantCounts[i])
		}
	}
}
