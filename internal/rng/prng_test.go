package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro(42)
	b := NewXoshiro(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestNewXoshiroSeedsDiffer(t *testing.T) {
	a := NewXoshiro(1)
	b := NewXoshiro(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestNewXoshiroZeroSeedValid(t *testing.T) {
	x := NewXoshiro(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[x.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded generator produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewXoshiro(7)
	child := parent.Split()
	// Child and parent must not emit identical streams.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split child mirrors parent: %d identical of 100", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := NewXoshiro(7).Split()
	b := NewXoshiro(7).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split of identical parents diverged at %d", i)
		}
	}
}

func TestFloat64OpenInterval(t *testing.T) {
	src := NewXoshiro(99)
	for i := 0; i < 100000; i++ {
		u := Float64(src)
		if u <= 0 || u >= 1 {
			t.Fatalf("Float64 produced %v outside (0,1)", u)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	src := NewXoshiro(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Float64(src)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	src := NewXoshiro(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := Intn(src, n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(src, 0)")
		}
	}()
	Intn(NewXoshiro(1), 0)
}

func TestIntnUniformity(t *testing.T) {
	src := NewXoshiro(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[Intn(src, n)]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 0.08*expected {
			t.Fatalf("bucket %d count %d deviates from %v by more than 8%%", i, c, expected)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := NewXoshiro(21)
	f := func(raw uint8) bool {
		n := int(raw%64) + 1
		p := Perm(src, n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	src := NewXoshiro(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := Normal(src)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	src := NewXoshiro(13)
	for _, lambda := range []float64{0.5, 3, 10, 40, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += Poisson(src, lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean %v deviates too much", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	src := NewXoshiro(1)
	if Poisson(src, 0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
	if Poisson(src, -1) != 0 {
		t.Fatal("Poisson(negative) must be 0")
	}
}

func TestLockedSourceConcurrent(t *testing.T) {
	src := NewLockedSource(NewXoshiro(1))
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 10000; i++ {
				src.Uint64()
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
