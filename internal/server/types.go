package server

// Request and response bodies of the dpserver HTTP/JSON API. The mechanism
// request/response types live in internal/engine next to the mechanisms that
// define them; they are aliased here so API consumers (tests, clients) can
// keep importing them from the serving layer. Every request names a tenant;
// the server charges that tenant's privacy accountant atomically before the
// mechanism runs, so concurrent clients of the same tenant can never jointly
// overspend the budget.

import (
	"encoding/json"

	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/store"
)

// Mechanism request/response bodies, defined by the engine.
type (
	// Common holds the request fields shared by every mechanism request.
	Common = engine.Common
	// TopKRequest is the body of POST /v1/topk.
	TopKRequest = engine.TopKRequest
	// SelectionJSON is one selected query in a TopKResponse.
	SelectionJSON = engine.SelectionJSON
	// TopKResponse is the body of a successful POST /v1/topk.
	TopKResponse = engine.TopKResponse
	// MaxRequest is the body of POST /v1/max (the k = 1 special case).
	MaxRequest = engine.MaxRequest
	// MaxResponse is the body of a successful POST /v1/max.
	MaxResponse = engine.MaxResponse
	// SVTRequest is the body of POST /v1/svt.
	SVTRequest = engine.SVTRequest
	// SVTAnswerJSON is one above-threshold answer in an SVTResponse.
	SVTAnswerJSON = engine.SVTAnswerJSON
	// SVTResponse is the body of a successful POST /v1/svt.
	SVTResponse = engine.SVTResponse
	// PipelineTopKRequest is the body of POST /v1/pipeline/topk.
	PipelineTopKRequest = engine.PipelineTopKRequest
	// PipelineTopKResponse is the body of a successful POST /v1/pipeline/topk.
	PipelineTopKResponse = engine.PipelineTopKResponse
	// PipelineSVTRequest is the body of POST /v1/pipeline/svt.
	PipelineSVTRequest = engine.PipelineSVTRequest
	// PipelineSVTResponse is the body of a successful POST /v1/pipeline/svt.
	PipelineSVTResponse = engine.PipelineSVTResponse
)

// BatchItem is one entry of a BatchRequest: the name of a registered
// mechanism plus its request body. The inner request may leave the tenant
// empty (the batch tenant pays) but must not name a different tenant.
type BatchItem struct {
	// Mechanism is the registered mechanism name, e.g. "topk" or
	// "pipeline/svt".
	Mechanism string `json:"mechanism"`
	// Request is the mechanism's request body.
	Request json.RawMessage `json:"request"`
}

// BatchRequest is the body of POST /v1/batch: up to MaxBatch mechanism
// requests executed in one round trip and paid for with a single atomic
// multi-charge — either every item's ε is reserved, or (when the total would
// exceed the tenant's remaining budget) none is and the whole batch fails
// with a 402. A batch can therefore never overspend what the same requests
// issued serially could.
type BatchRequest struct {
	// Tenant identifies whose privacy budget pays for every item.
	Tenant string `json:"tenant"`
	// Requests are the batched mechanism requests, executed concurrently.
	Requests []BatchItem `json:"requests"`
}

// BatchItemResult is one entry of a BatchResponse: exactly one of Response
// and Error is set.
type BatchItemResult struct {
	// Mechanism echoes the item's mechanism name.
	Mechanism string `json:"mechanism"`
	// Response is the mechanism's response body on success.
	Response any `json:"response,omitempty"`
	// Error reports an execution failure of this item alone. The item's ε
	// stays charged — the reservation was admitted before execution, and
	// refunding would let a client probe for free.
	Error *ErrorBody `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch.
type BatchResponse struct {
	Tenant string `json:"tenant"`
	// Results lists one result per request, in request order.
	Results []BatchItemResult `json:"results"`
	// EpsilonSpent is the total ε charged for the batch.
	EpsilonSpent float64 `json:"epsilon_spent"`
	// BudgetRemaining is the tenant's unspent budget after the batch.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Trace is the batch's stage-timing breakdown, present only when the
	// request opted in with ?trace=1.
	Trace *TraceJSON `json:"trace,omitempty"`
}

// QuerySpec is the counting-query spec of a dataset-backed mechanism
// request, defined by the engine.
type QuerySpec = engine.QuerySpec

// DatasetInfo summarises one catalogued dataset, as returned by the dataset
// endpoints.
type DatasetInfo = store.Info

// DatasetUploadRequest is the body of POST /v1/datasets: exactly one of FIMI
// (inline transaction data) and Synthetic (a calibrated generator) must be
// set. The registered dataset's item counts are precomputed once so
// dataset-backed queries never rescan it; later deltas arrive through
// POST /v1/datasets/{name}/append, which maintains the counts incrementally.
type DatasetUploadRequest struct {
	// Name is the catalog key the dataset is registered and queried under.
	Name string `json:"name"`
	// FIMI is the transaction data in the FIMI text format: one transaction
	// per line, space-separated non-negative item ids.
	FIMI string `json:"fimi,omitempty"`
	// Synthetic generates one of the paper's calibrated synthetic stand-ins
	// instead of parsing uploaded data.
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
}

// SyntheticSpec names a synthetic dataset generator.
type SyntheticSpec struct {
	// Kind is "bmspos", "kosarak" or "t40i10d100k".
	Kind string `json:"kind"`
	// Scale divides the generated transaction count (<= 1 means full size).
	Scale int `json:"scale,omitempty"`
	// Seed seeds the generator (0 picks a fixed default).
	Seed uint64 `json:"seed,omitempty"`
}

// DatasetAppendRequest is the body of POST /v1/datasets/{name}/append: a
// delta of transactions, FIMI-formatted like an upload, appended to the
// catalogued dataset. The server journals the delta, extends the dataset's
// derived state incrementally (no rescan of the existing records) and feeds
// the new counts to every monitor watching the dataset.
type DatasetAppendRequest struct {
	// FIMI is the appended transactions in the FIMI text format.
	FIMI string `json:"fimi"`
}

// DatasetAppendResponse is the body of a successful append.
type DatasetAppendResponse struct {
	// Dataset is the catalog key appended to.
	Dataset string `json:"dataset"`
	// AppendedRecords is how many transactions this request added.
	AppendedRecords int `json:"appended_records"`
	// Seq is the dataset's 1-based append sequence number for this delta:
	// the position of this append in the dataset's own history, independent
	// of appends to other datasets.
	Seq uint64 `json:"seq"`
	// Records and Items are the dataset's totals after the append.
	Records int `json:"records"`
	Items   int `json:"items"`
	// MonitorVerdicts is how many monitor verdicts the append triggered.
	MonitorVerdicts int `json:"monitor_verdicts"`
}

// MonitorCreateRequest is the body of POST /v1/monitors: a long-lived SVT
// threshold query over one item of a catalogued dataset. The monitor's whole
// ε is charged to the tenant once, at registration; every verdict it ever
// streams — one per append to the dataset, plus the registration-time one —
// is paid from that budget by the underlying (Adaptive-)SVT-with-Gap run.
type MonitorCreateRequest struct {
	// Tenant identifies whose privacy budget pays for the monitor.
	Tenant string `json:"tenant"`
	// Dataset is the catalog key to watch.
	Dataset string `json:"dataset"`
	// Item is the item id whose count is compared against Threshold.
	Item int32 `json:"item"`
	// Threshold is the public comparison threshold.
	Threshold float64 `json:"threshold"`
	// Epsilon is the monitor's total privacy budget.
	Epsilon float64 `json:"epsilon"`
	// MaxAnswers is the SVT answer budget k: the monitor retires after this
	// many above-threshold verdicts (default 1).
	MaxAnswers int `json:"max_answers,omitempty"`
	// Adaptive enables the Adaptive-SVT-with-Gap top branch, spending less on
	// verdicts that clear the threshold by a wide margin.
	Adaptive bool `json:"adaptive,omitempty"`
	// Seed seeds the monitor's private noise stream (0 draws a random seed).
	// The seed is journalled, never released: fixing it makes a deterministic
	// test reproducible, it does not let the client predict the noise of a
	// seed it did not choose.
	Seed uint64 `json:"seed,omitempty"`
}

// MonitorInfo summarises one registered monitor.
type MonitorInfo struct {
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant"`
	Dataset   string  `json:"dataset"`
	Item      int32   `json:"item"`
	Threshold float64 `json:"threshold"`
	// Epsilon is the monitor's total budget; BudgetSpent is what the
	// underlying SVT run has consumed (threshold charge included).
	Epsilon     float64 `json:"epsilon"`
	BudgetSpent float64 `json:"budget_spent"`
	MaxAnswers  int     `json:"max_answers"`
	Adaptive    bool    `json:"adaptive,omitempty"`
	// Verdicts is the number of verdicts released so far; AboveCount how many
	// of them were above-threshold.
	Verdicts   int `json:"verdicts"`
	AboveCount int `json:"above_count"`
	// Retired reports that the monitor's SVT run has stopped (answer budget
	// or ε exhausted); it delivers no further verdicts.
	Retired bool `json:"retired"`
}

// MonitorVerdict is one released monitor answer, delivered over the SSE
// stream and retained as the monitor's replayable history. Only the DP
// outputs of the SVT run appear here — the verdict, the branch, and (for
// above-threshold answers) the free gap; never the raw count.
type MonitorVerdict struct {
	// Monitor is the monitor id the verdict belongs to.
	Monitor string `json:"monitor"`
	// Seq is the verdict's position in the monitor's stream (0 is the
	// registration-time verdict).
	Seq int `json:"seq"`
	// Records is the dataset's record count the verdict was evaluated at.
	Records int `json:"records"`
	// Above reports whether the item's count cleared the noisy threshold.
	Above bool `json:"above"`
	// Gap is the released free gap (only meaningful when Above).
	Gap float64 `json:"gap,omitempty"`
	// Branch is the SVT branch that produced the answer ("below", "middle",
	// "top").
	Branch string `json:"branch"`
	// BudgetUsed is the ε this verdict consumed from the monitor's budget.
	BudgetUsed float64 `json:"budget_used"`
	// Retired reports that this was the monitor's final verdict.
	Retired bool `json:"retired,omitempty"`
}

// MonitorCreateResponse is the body of a successful POST /v1/monitors.
type MonitorCreateResponse struct {
	MonitorInfo
	// Verdict is the registration-time verdict against the dataset's current
	// counts (the stream's seq 0), if the run released one.
	Verdict *MonitorVerdict `json:"verdict,omitempty"`
}

// MonitorListResponse is the body of GET /v1/monitors.
type MonitorListResponse struct {
	// Monitors lists every registered monitor in registration order.
	Monitors []MonitorInfo `json:"monitors"`
}

// DatasetListResponse is the body of GET /v1/datasets.
type DatasetListResponse struct {
	// Datasets lists every catalogued dataset in name order.
	Datasets []DatasetInfo `json:"datasets"`
}

// BudgetResponse is the body of GET /v1/tenants/{id}/budget.
type BudgetResponse struct {
	Tenant string `json:"tenant"`
	// Budget is the tenant's configured total ε budget.
	Budget float64 `json:"budget"`
	// Spent is the total ε charged so far.
	Spent float64 `json:"spent"`
	// Remaining is Budget − Spent (never negative).
	Remaining float64 `json:"remaining"`
	// RemainingFraction is Remaining/Budget.
	RemainingFraction float64 `json:"remaining_fraction"`
	// Charges is the number of admitted requests.
	Charges int `json:"charges"`
	// SpentByMechanism breaks Spent down by the mechanism charged for. It is
	// served from the accountant's incrementally-maintained aggregation, so a
	// budget poll never materializes the charge log.
	SpentByMechanism map[string]float64 `json:"spent_by_mechanism"`
	// Log is the raw per-charge expenditure log, present only when the
	// request opted in with ?log=1 (copying the full log on every poll is
	// exactly the cost the default response avoids). A restored-from-snapshot
	// tenant's log may be shorter than Charges: compaction aggregates by
	// mechanism but preserves the admitted-charge count.
	Log []ChargeJSON `json:"log,omitempty"`
}

// ChargeJSON is one admitted charge in a BudgetResponse log.
type ChargeJSON struct {
	// Mechanism is the charge label (the mechanism name billed under).
	Mechanism string `json:"mechanism"`
	// Epsilon is the ε charged.
	Epsilon float64 `json:"epsilon"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok", or "degraded" when the durable state log has hit an
	// I/O error (PersistError carries it): the server still serves, but new
	// charges are no longer journalled and a restart would refund them.
	Status string `json:"status"`
	// PersistError is the durable log's sticky error, when one occurred.
	PersistError string `json:"persist_error,omitempty"`
	// Tenants is the number of tenants with a live accountant.
	Tenants int `json:"tenants"`
	// Workers is the size of the mechanism worker pool.
	Workers int `json:"workers"`
	// Mechanisms lists the servable mechanism names.
	Mechanisms []string `json:"mechanisms"`
	// Datasets is the number of catalogued datasets.
	Datasets int `json:"datasets"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// WALGeneration is the durable log's current segment generation
	// (incremented by every compaction); zero on an in-memory server.
	WALGeneration uint64 `json:"wal_generation,omitempty"`
}

// Error codes used in ErrorBody.Code.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeUnknownMechanism = "unknown_mechanism"
	CodeUnknownTenant    = "unknown_tenant"
	CodeUnknownDataset   = "unknown_dataset"
	CodeBadQuerySpec     = "bad_query_spec"
	CodeDatasetExists    = "dataset_exists"
	CodeUnknownMonitor   = "unknown_monitor"
	CodeBudgetExhausted  = "budget_exhausted"
	CodeTenantLimit      = "tenant_limit"
	CodeCancelled        = "cancelled"
	CodeRequestTooLarge  = "request_too_large"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal_error"
)

// ErrorBody is the machine-readable error payload.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// RequestID echoes the request's X-Request-ID (client-supplied or
	// generated), so a client can quote the id of a failed request without
	// having kept the response headers. Empty for per-item batch errors —
	// the batch response carries the id once.
	RequestID string `json:"request_id,omitempty"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// Remaining is the tenant's remaining budget; only set for
	// budget_exhausted errors.
	Remaining *float64 `json:"remaining,omitempty"`
	// Exhausted distinguishes the two budget_exhausted flavours: true means
	// the budget is fully spent (no positive charge would fit), false means
	// this particular — possibly batched — charge exceeded a non-trivial
	// remainder. Only set for budget_exhausted errors.
	Exhausted *bool `json:"exhausted,omitempty"`
}

// ErrorEnvelope wraps every non-2xx response body.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
