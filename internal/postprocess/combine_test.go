package postprocess

import (
	"math"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

func TestCombineByInverseVariance(t *testing.T) {
	// Equal variances → simple average.
	est, v, err := CombineByInverseVariance(10, 4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est != 15 || v != 2 {
		t.Fatalf("est %v var %v, want 15 and 2", est, v)
	}
	// A much more precise second estimate dominates.
	est, _, err = CombineByInverseVariance(10, 1e6, 20, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-20) > 1e-3 {
		t.Fatalf("est %v should be pulled to 20", est)
	}
	if _, _, err := CombineByInverseVariance(1, 0, 2, 1); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestCombineMany(t *testing.T) {
	est, v, err := CombineMany([]float64{10, 20, 30}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if est != 20 || math.Abs(v-1.0/3.0) > 1e-12 {
		t.Fatalf("est %v var %v", est, v)
	}
	if _, _, err := CombineMany(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := CombineMany([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := CombineMany([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("negative variance accepted")
	}
}

func TestCombineReducesVarianceEmpirically(t *testing.T) {
	// Combining a gap-based estimate with an independent measurement must have
	// lower empirical MSE than either input.
	src := rng.NewXoshiro(5)
	const truth = 250.0
	const varGap, varMeas = 50.0, 18.0
	scaleGap := math.Sqrt(varGap / 2)
	scaleMeas := math.Sqrt(varMeas / 2)
	const trials = 40000
	var seGap, seMeas, seComb float64
	for i := 0; i < trials; i++ {
		gapEst := truth + rng.Laplace(src, scaleGap)
		measEst := truth + rng.Laplace(src, scaleMeas)
		comb, _, err := CombineByInverseVariance(gapEst, varGap, measEst, varMeas)
		if err != nil {
			t.Fatal(err)
		}
		seGap += (gapEst - truth) * (gapEst - truth)
		seMeas += (measEst - truth) * (measEst - truth)
		seComb += (comb - truth) * (comb - truth)
	}
	if !(seComb < seMeas && seComb < seGap) {
		t.Fatalf("combined MSE %v not below inputs (%v, %v)", seComb/trials, seMeas/trials, seGap/trials)
	}
	wantVar := 1 / (1/varGap + 1/varMeas)
	if math.Abs(seComb/trials-wantVar) > 0.06*wantVar {
		t.Fatalf("combined MSE %v, want ≈ %v", seComb/trials, wantVar)
	}
}

func TestSVTErrorReductionRatio(t *testing.T) {
	// Ratios are in (0,1) and approach 4/5 (general) and 1/2 (monotonic).
	for _, k := range []int{1, 2, 5, 10, 25} {
		g := SVTErrorReductionRatio(k, false)
		m := SVTErrorReductionRatio(k, true)
		if g <= 0 || g >= 1 || m <= 0 || m >= 1 {
			t.Fatalf("k=%d ratios out of range: %v %v", k, g, m)
		}
		if m >= g {
			t.Fatalf("k=%d: monotonic ratio %v should be below general %v", k, m, g)
		}
	}
	if got := SVTErrorReductionRatio(100000, false); math.Abs(got-0.8) > 0.01 {
		t.Fatalf("general limit %v, want → 0.8", got)
	}
	if got := SVTErrorReductionRatio(100000, true); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("monotonic limit %v, want → 0.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	SVTErrorReductionRatio(0, true)
}

func TestSVTExpectedImprovementPercent(t *testing.T) {
	// The k=25 monotonic improvement should already be above 40%.
	if got := SVTExpectedImprovementPercent(25, true); got < 40 || got > 50 {
		t.Fatalf("k=25 monotonic improvement %v%%", got)
	}
	// The general-query improvement stays below 20%.
	if got := SVTExpectedImprovementPercent(25, false); got < 10 || got > 20 {
		t.Fatalf("k=25 general improvement %v%%", got)
	}
}
