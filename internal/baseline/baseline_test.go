package baseline

import (
	"math"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

func TestNewLaplaceMechanismValidation(t *testing.T) {
	if _, err := NewLaplaceMechanism(0, 1); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := NewLaplaceMechanism(1, 0); err == nil {
		t.Fatal("sensitivity 0 accepted")
	}
	m, err := NewLaplaceMechanism(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scale() != 4 {
		t.Fatalf("scale %v, want 4", m.Scale())
	}
	if m.Variance() != 32 {
		t.Fatalf("variance %v, want 32", m.Variance())
	}
}

func TestLaplaceMechanismAnswerUnbiased(t *testing.T) {
	m, _ := NewLaplaceMechanism(1, 1)
	src := rng.NewXoshiro(1)
	answers := []float64{10, -5, 0}
	const trials = 20000
	sums := make([]float64, len(answers))
	for i := 0; i < trials; i++ {
		noisy := m.Answer(src, answers)
		for j, v := range noisy {
			sums[j] += v
		}
	}
	for j, want := range answers {
		got := sums[j] / trials
		if math.Abs(got-want) > 0.05 {
			t.Errorf("coordinate %d mean %v, want ≈ %v", j, got, want)
		}
	}
}

func TestMeasureSelected(t *testing.T) {
	m, _ := NewLaplaceMechanism(1, 1)
	src := rng.NewXoshiro(2)
	answers := []float64{10, 20, 30, 40}
	got, err := m.MeasureSelected(src, answers, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("length %d", len(got))
	}
	if _, err := m.MeasureSelected(src, answers, []int{9}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	empty, err := m.MeasureSelected(src, answers, nil)
	if err != nil || empty != nil {
		t.Fatalf("empty selection: %v, %v", empty, err)
	}
	if v := m.MeasurementVariance(2); v != rng.LaplaceVariance(2) {
		t.Fatalf("measurement variance %v", v)
	}
}

func TestMeasureSelectedVarianceEmpirical(t *testing.T) {
	m, _ := NewLaplaceMechanism(0.5, 1)
	src := rng.NewXoshiro(3)
	answers := []float64{100}
	const trials = 30000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v, err := m.MeasureSelected(src, answers, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		sum += v[0]
		sumSq += v[0] * v[0]
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	want := m.MeasurementVariance(1)
	if math.Abs(variance-want) > 0.1*want {
		t.Fatalf("empirical variance %v, want ≈ %v", variance, want)
	}
}

func TestNoisyTopKValidation(t *testing.T) {
	if _, err := NewNoisyTopK(0, 1, true); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewNoisyTopK(2, 0, true); err == nil {
		t.Fatal("eps=0 accepted")
	}
	m, _ := NewNoisyTopK(4, 2, false)
	if m.NoiseScale() != 4 {
		t.Fatalf("scale %v, want 2k/eps = 4", m.NoiseScale())
	}
	mono, _ := NewNoisyTopK(4, 2, true)
	if mono.NoiseScale() != 2 {
		t.Fatalf("monotonic scale %v, want k/eps = 2", mono.NoiseScale())
	}
}

func TestNoisyTopKSelect(t *testing.T) {
	m, _ := NewNoisyTopK(2, 100, true)
	src := rng.NewXoshiro(4)
	answers := []float64{5, 1000, 3, 900, 1}
	idx, err := m.Select(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("selected %v, want [1 3]", idx)
	}
	if _, err := m.Select(src, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	big, _ := NewNoisyTopK(10, 1, true)
	if _, err := big.Select(src, answers); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestNoisyMax(t *testing.T) {
	src := rng.NewXoshiro(5)
	idx, err := NoisyMax(src, []float64{1, 2, 500}, 50, true)
	if err != nil || idx != 2 {
		t.Fatalf("NoisyMax = %d, %v", idx, err)
	}
	if _, err := NoisyMax(src, []float64{1}, 0, true); err == nil {
		t.Fatal("invalid epsilon accepted")
	}
}

func TestThetaLyu(t *testing.T) {
	if got, want := ThetaLyu(1, true), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ThetaLyu(1, mono) = %v, want %v", got, want)
	}
	want := 1 / (1 + math.Pow(20, 2.0/3.0))
	if got := ThetaLyu(10, false); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ThetaLyu(10) = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	ThetaLyu(0, true)
}

func TestSparseVectorValidation(t *testing.T) {
	if _, err := NewSparseVector(0, 1, 10, 0.3, true); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewSparseVector(2, 0, 10, 0.3, true); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewSparseVector(2, 1, 10, 0, true); err == nil {
		t.Fatal("theta=0 accepted")
	}
	if _, err := NewSparseVector(2, 1, 10, 1, true); err == nil {
		t.Fatal("theta=1 accepted")
	}
}

func TestSparseVectorRun(t *testing.T) {
	m, err := NewSparseVector(3, 1, 100, ThetaLyu(3, true), true)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXoshiro(6)
	answers := []float64{1e6, -1e6, 1e6, 1e6, 1e6}
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount != 3 {
		t.Fatalf("above count %d, want 3", res.AboveCount)
	}
	above := res.AboveIndices()
	if len(above) != 3 {
		t.Fatalf("above indices %v", above)
	}
	for _, idx := range above {
		if idx == 1 {
			t.Fatal("hopelessly below-threshold query reported above")
		}
	}
	if res.BudgetSpent > m.Epsilon+1e-9 {
		t.Fatalf("budget spent %v exceeds %v", res.BudgetSpent, m.Epsilon)
	}
	if _, err := m.Run(src, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSparseVectorStopsAtK(t *testing.T) {
	m, _ := NewSparseVector(2, 1, 0, ThetaLyu(2, true), true)
	src := rng.NewXoshiro(7)
	answers := make([]float64, 50)
	for i := range answers {
		answers[i] = 1e6
	}
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount != 2 {
		t.Fatalf("above count %d, want 2", res.AboveCount)
	}
	if len(res.Answers) > len(answers) {
		t.Fatal("processed more queries than exist")
	}
	// The stream must stop right after the second positive answer.
	last := res.Answers[len(res.Answers)-1]
	if !last.Above {
		t.Fatal("final processed query should be the k-th positive")
	}
}

func TestExponentialMechanism(t *testing.T) {
	if _, err := NewExponentialMechanism(0, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewExponentialMechanism(1, 0); err == nil {
		t.Fatal("sensitivity=0 accepted")
	}
	m, _ := NewExponentialMechanism(20, 1)
	src := rng.NewXoshiro(8)
	utilities := []float64{1, 50, 2}
	wins := 0
	for i := 0; i < 500; i++ {
		idx, err := m.Select(src, utilities)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 1 {
			wins++
		}
	}
	if wins < 490 {
		t.Fatalf("high-utility item won only %d of 500 at eps=20", wins)
	}
	if _, err := m.Select(src, nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

func TestExponentialSelectTopK(t *testing.T) {
	m, _ := NewExponentialMechanism(60, 1)
	src := rng.NewXoshiro(9)
	utilities := []float64{1, 100, 2, 90, 3, 80}
	chosen, err := m.SelectTopK(src, utilities, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 3 {
		t.Fatalf("chose %d items", len(chosen))
	}
	seen := map[int]bool{}
	for _, c := range chosen {
		if seen[c] {
			t.Fatalf("item %d chosen twice", c)
		}
		seen[c] = true
	}
	// With a huge budget the three high-utility items must win.
	for _, want := range []int{1, 3, 5} {
		if !seen[want] {
			t.Fatalf("expected item %d among %v", want, chosen)
		}
	}
	if _, err := m.SelectTopK(src, utilities, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := m.SelectTopK(src, utilities, 10); err == nil {
		t.Fatal("k>n accepted")
	}
}
