package freegap_test

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	freegap "github.com/freegap/freegap"
)

// TestFacadeTopKEndToEnd exercises the public API the way the quickstart does:
// select the top queries with gaps, measure them, and refine with BLUE.
func TestFacadeTopKEndToEnd(t *testing.T) {
	src := freegap.NewSource(7)
	counts := []float64{812, 641, 633, 601, 425, 124, 77, 8}
	const k, eps = 3, 4.0

	topk, err := freegap.NewTopKWithGap(k, eps/2, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := topk.Run(src, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selections) != k {
		t.Fatalf("selected %d queries, want %d", len(res.Selections), k)
	}
	for _, s := range res.Selections {
		if s.Gap <= 0 {
			t.Fatalf("non-positive gap %v", s.Gap)
		}
	}

	meas, err := freegap.NewLaplaceMechanism(eps/2, 1)
	if err != nil {
		t.Fatal(err)
	}
	measurements, err := meas.MeasureSelected(src, counts, res.Indices())
	if err != nil {
		t.Fatal(err)
	}
	estimates, err := freegap.BLUEFromVariances(measurements, res.Gaps()[:k-1],
		meas.MeasurementVariance(k), res.PerQueryNoiseVariance())
	if err != nil {
		t.Fatal(err)
	}
	if len(estimates) != k {
		t.Fatalf("BLUE returned %d estimates", len(estimates))
	}
	// With eps=4 on well-separated counts the estimates should land close to
	// the truth for the selected queries.
	for i, idx := range res.Indices() {
		if math.Abs(estimates[i]-counts[idx]) > 50 {
			t.Fatalf("estimate %v for query %d (true %v) too far off", estimates[i], idx, counts[idx])
		}
	}
}

func TestFacadeAdaptiveSVTAndConfidence(t *testing.T) {
	src := freegap.NewSource(9)
	counts := []float64{900, 870, 860, 500, 100, 80, 60, 40, 20}
	threshold := freegap.RandomThreshold(src, counts, 2)
	if threshold <= 0 {
		t.Fatalf("threshold %v", threshold)
	}

	svt, err := freegap.NewAdaptiveSVTWithGap(2, 2.0, 600, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svt.Run(src, counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpent > 2.0+1e-9 {
		t.Fatalf("budget overspent: %v", res.BudgetSpent)
	}
	for _, it := range res.AboveItems() {
		lower, err := freegap.GapLowerConfidenceBound(it.Gap, 600, 0.95, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if lower >= it.Gap+600 {
			t.Fatal("lower bound must sit below the point estimate")
		}
	}
}

func TestFacadeBaselinesAndTheory(t *testing.T) {
	src := freegap.NewSource(11)
	counts := []float64{100, 90, 10, 5}

	nm, err := freegap.NewNoisyTopK(1, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if idx, err := nm.Select(src, counts); err != nil || len(idx) != 1 {
		t.Fatalf("NoisyTopK: %v %v", idx, err)
	}
	sv, err := freegap.NewSparseVector(1, 1, 50, freegap.ThetaLyu(1, true), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Run(src, counts); err != nil {
		t.Fatal(err)
	}
	em, err := freegap.NewExponentialMechanism(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Select(src, counts); err != nil {
		t.Fatal(err)
	}

	if got := freegap.TopKExpectedImprovementPercent(25, 1); got < 40 {
		t.Fatalf("Top-K theoretical improvement at k=25 is %v%%, want ≈ 48%%", got)
	}
	if got := freegap.SVTExpectedImprovementPercent(25, true); got < 40 {
		t.Fatalf("SVT theoretical improvement at k=25 is %v%%, want > 40%%", got)
	}
	if got := freegap.ErrorReductionRatio(10, 1); math.Abs(got-0.55) > 1e-9 {
		t.Fatalf("ErrorReductionRatio(10,1) = %v", got)
	}
	if got := freegap.TieProbabilityBound(1, 1e-9, 100); got <= 0 || got > 1 {
		t.Fatalf("tie bound %v", got)
	}
}

func TestFacadeAccountantAndDatasets(t *testing.T) {
	acct, err := freegap.NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend("selection", 0.5); err != nil {
		t.Fatal(err)
	}
	if acct.Remaining() <= 0 {
		t.Fatal("remaining budget should be positive")
	}

	db := freegap.NewSyntheticBMSPOS(3, 1000)
	if db.NumRecords() == 0 || db.NumItems() == 0 {
		t.Fatal("empty synthetic dataset")
	}
	counts := db.ItemCounts()
	if len(counts) != db.NumItems() {
		t.Fatal("count vector length mismatch")
	}
	kos := freegap.NewSyntheticKosarak(3, 2000)
	quest := freegap.NewSyntheticT40I10D100K(3, 100)
	if kos.NumRecords() == 0 || quest.NumRecords() == 0 {
		t.Fatal("empty synthetic datasets")
	}
}

func TestFacadePrivacyAudit(t *testing.T) {
	d := []float64{10, 9, 3}
	dPrime := []float64{9, 8, 3}
	res, err := freegap.EstimateEpsilon(freegap.AuditTopK(1, 0.5, false), d, dPrime,
		freegap.AuditConfig{Trials: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonHat > 0.5+0.3 {
		t.Fatalf("audit reports epsilon-hat %v for a 0.5-DP mechanism", res.EpsilonHat)
	}
	res2, err := freegap.EstimateEpsilon(freegap.AuditAdaptiveSVT(1, 0.5, 8, true), d, dPrime,
		freegap.AuditConfig{Trials: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.EpsilonHat > 0.5+0.3 {
		t.Fatalf("audit reports epsilon-hat %v for a 0.5-DP mechanism", res2.EpsilonHat)
	}
}

func TestFacadeMaxWithGapAndLaplace(t *testing.T) {
	src := freegap.NewSource(21)
	res, err := freegap.MaxWithGap(src, []float64{5, 500, 3}, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 1 || res.Gap <= 0 {
		t.Fatalf("unexpected MaxWithGap result %+v", res)
	}
	if v := freegap.Laplace(src, 2); math.IsNaN(v) {
		t.Fatal("Laplace returned NaN")
	}
	if freegap.NoiseLaplace.String() != "laplace" {
		t.Fatal("noise kind constants not wired through")
	}
	if freegap.BranchTop.String() != "top" {
		t.Fatal("branch constants not wired through")
	}
}

// TestFacadeServer exercises the serving layer through the public facade: an
// in-process multi-tenant server answering a gap-bearing top-k query and
// enforcing the tenant budget.
func TestFacadeServer(t *testing.T) {
	srv, err := freegap.NewServer(freegap.ServerConfig{TenantBudget: 1.0, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"tenant":"facade","k":2,"epsilon":0.8,"monotonic":true,"answers":[812,641,633,601,425]}`
	resp, err := http.Post(ts.URL+"/v1/topk", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Selections []struct {
			Index int     `json:"index"`
			Gap   float64 `json:"gap"`
		} `json:"selections"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Selections) != 2 || out.Selections[0].Gap <= 0 {
		t.Fatalf("unexpected selections %+v", out.Selections)
	}
	if math.Abs(out.BudgetRemaining-0.2) > 1e-9 {
		t.Fatalf("remaining = %v, want 0.2", out.BudgetRemaining)
	}

	// A second spend of 0.8 must bounce with the structured 402.
	resp2, err := http.Post(ts.URL+"/v1/topk", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("second spend status = %d, want 402", resp2.StatusCode)
	}

	reg, err := freegap.NewTenantRegistry(2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Charge("t", "test", 1.5); err != nil {
		t.Fatalf("registry charge: %v", err)
	}
}
