package server

// Durable-state glue: rebuilding the dataset catalog from journalled records
// at construction, and journalling new registrations while serving. Budget
// charges need no glue here — the persist log implements ChargeJournal, and
// the tenant registry installs it as a per-accountant hook so a WAL entry is
// written iff the charge committed.

import (
	"fmt"
	"os"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/store"
)

// restoreDataset rebuilds one journalled dataset and registers it into the
// catalog, recomputing its item-count vector exactly once (the registration
// precompute), so restored datasets keep the zero-per-request-rescan
// property. Restored registrations are not re-journalled. A name the caller
// already catalogued directly in Config.Datasets wins over the journalled
// copy — mirroring the Preload skip — so a pre-populated store never makes
// a restart unstartable.
func (s *Server) restoreDataset(rec persist.DatasetRecord) error {
	if _, err := s.datasets.Get(rec.Name); err == nil {
		return nil
	}
	db, err := s.materializeDataset(rec)
	if err != nil {
		return err
	}
	if _, err := s.datasets.Register(rec.Name, rec.Source, db); err != nil {
		return fmt.Errorf("server: restoring dataset %q: %w", rec.Name, err)
	}
	s.registerDatasetTelemetry(rec.Name)
	return nil
}

// materializeDataset turns a journalled record back into transactions:
// blob-backed records re-read their FIMI file under the catalog limits,
// synthetic records regenerate deterministically from kind/scale/seed.
func (s *Server) materializeDataset(rec persist.DatasetRecord) (*dataset.Transactions, error) {
	lim := s.datasets.Limits()
	switch {
	case rec.File != "":
		db, err := dataset.ReadFIMIFileLimited(s.persist.BlobPath(rec), dataset.FIMILimits{
			MaxRecords: lim.MaxRecords,
			MaxItemID:  int32(lim.MaxItems) - 1,
		})
		if err != nil {
			return nil, fmt.Errorf("server: restoring dataset %q: %w", rec.Name, err)
		}
		// The FIMI text only carries observed ids; restore the declared
		// universe so all_items workloads keep their exact shape.
		return db.WithUniverse(rec.Items), nil
	case rec.Synthetic != nil:
		db, err := store.GenerateSynthetic(rec.Synthetic.Kind, rec.Synthetic.Scale, rec.Synthetic.Seed)
		if err != nil {
			return nil, fmt.Errorf("server: restoring dataset %q: %w", rec.Name, err)
		}
		return db, nil
	default:
		return nil, fmt.Errorf("server: dataset record %q names neither a blob nor a synthetic spec", rec.Name)
	}
}

// journalDataset makes one freshly registered dataset durable. Synthetic
// datasets (syn != nil) are journalled as their generator spec — regeneration
// with the same kind/scale/seed is deterministic and, unlike a FIMI blob,
// preserves the exact item universe (trailing zero-count items have no
// transactions to serialise). Everything else becomes a FIMI blob under the
// state directory, written and synced before the WAL record that references
// it. A nil persist log makes it a no-op.
func (s *Server) journalDataset(entry *store.Entry, syn *persist.SyntheticRecord) error {
	if s.persist == nil {
		return nil
	}
	info := entry.Info()
	rec := persist.DatasetRecord{Name: info.Name, Source: info.Source, Items: info.Items, Synthetic: syn}
	if syn == nil {
		rel, err := s.persist.SaveDatasetBlob(info.Name, entry.Dataset())
		if err != nil {
			return fmt.Errorf("server: persisting dataset %q: %w", info.Name, err)
		}
		rec.File = rel
	}
	if err := s.persist.AppendDataset(rec); err != nil {
		if rec.File != "" {
			// Nothing durable references the blob; reclaim it instead of
			// leaving an orphan in the state directory.
			_ = os.Remove(s.persist.BlobPath(rec))
		}
		return fmt.Errorf("server: journalling dataset %q: %w", info.Name, err)
	}
	return nil
}
