package rng

import (
	"errors"
	"math"
)

// ErrInvalidBase is returned when a discrete sampler is constructed with a
// non-positive discretization base.
var ErrInvalidBase = errors.New("rng: discretization base must be positive")

// DiscreteLaplace samples from the discrete Laplace (two-sided geometric)
// distribution whose support is the multiples of base γ and whose probability
// mass function is
//
//	f(kγ) = (1−e^(−εγ)) / (1+e^(−εγ)) · e^(−εγ|k|),  k ∈ ℤ,
//
// matching Appendix A.1 of the paper. eps plays the role of the inverse scale
// (the continuous analogue is Laplace(1/eps)); base is the granularity γ.
//
// The sampler draws the sign and a geometric magnitude directly from the
// closed-form inverse CDF, so it needs only two uniforms per sample.
func DiscreteLaplace(src Source, eps, base float64) float64 {
	if base <= 0 {
		panic(ErrInvalidBase)
	}
	if eps <= 0 {
		panic(ErrInvalidScale)
	}
	alpha := math.Exp(-eps * base) // success parameter of the geometric tail
	// Probability of exactly zero.
	p0 := (1 - alpha) / (1 + alpha)
	u := Float64(src)
	if u < p0 {
		return 0
	}
	// Remaining mass is split evenly between the two geometric tails.
	u = (u - p0) / (1 - p0) // uniform in (0,1)
	negative := false
	if u < 0.5 {
		negative = true
		u *= 2
	} else {
		u = 2 * (u - 0.5)
	}
	// Magnitude m ≥ 1 with P(M ≥ m) = alpha^(m−1); invert the tail.
	m := 1 + int(math.Floor(math.Log(1-u)/math.Log(alpha)))
	if m < 1 {
		m = 1
	}
	v := float64(m) * base
	if negative {
		return -v
	}
	return v
}

// DiscreteLaplacePMF evaluates the probability mass at point x (which is
// rounded to the nearest multiple of base) of the discrete Laplace
// distribution with inverse scale eps and base γ. Used by the tie-probability
// experiment and by statistical tests of the sampler.
func DiscreteLaplacePMF(x, eps, base float64) float64 {
	if base <= 0 {
		panic(ErrInvalidBase)
	}
	if eps <= 0 {
		panic(ErrInvalidScale)
	}
	k := math.Round(x / base)
	alpha := math.Exp(-eps * base)
	return (1 - alpha) / (1 + alpha) * math.Pow(alpha, math.Abs(k))
}

// TieProbabilityBound returns the Appendix A.1 upper bound γεn² on the
// probability that any two of n sensitivity-1 queries perturbed with
// Discrete Laplace(1/ε) noise of base γ tie. When the bound exceeds 1 it is
// clamped, since it is a probability.
func TieProbabilityBound(eps, base float64, n int) float64 {
	if n < 0 {
		panic("rng: negative query count")
	}
	b := base * eps * float64(n) * float64(n)
	if b > 1 {
		return 1
	}
	if b < 0 {
		return 0
	}
	return b
}

// RoundToBase rounds x to the nearest multiple of base. It is how continuous
// query answers are snapped onto the discrete noise support when the Discrete
// Laplace sampler is used in place of the continuous one.
func RoundToBase(x, base float64) float64 {
	if base <= 0 {
		panic(ErrInvalidBase)
	}
	return math.Round(x/base) * base
}
