// Command dpsvt runs Sparse-Vector-with-Gap or Adaptive-Sparse-Vector-with-Gap
// over the item counts of a transaction dataset: it reports which items are
// (probably) above a threshold, the free noisy gap above the threshold for
// each, a Lemma 5 lower confidence bound on the item's true count, and the
// privacy budget left over.
//
// Usage:
//
//	dpsvt -synthetic bmspos -scale 100 -k 10 -eps 0.7 -adaptive
//	dpsvt -data transactions.dat -k 5 -eps 1.0 -threshold 1200
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	freegap "github.com/freegap/freegap"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpsvt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dpsvt", flag.ContinueOnError)
	var (
		dataPath   = fs.String("data", "", "transaction dataset in FIMI format")
		synthetic  = fs.String("synthetic", "", "generate a synthetic dataset instead of reading one: bmspos, kosarak, or quest")
		scale      = fs.Int("scale", 100, "scale-down factor for synthetic datasets")
		k          = fs.Int("k", 5, "minimum number of above-threshold answers to provision for")
		eps        = fs.Float64("eps", 0.7, "total privacy budget")
		threshold  = fs.Float64("threshold", 0, "public threshold (0 = pick one between the top-2k and top-8k counts)")
		seed       = fs.Uint64("seed", 1, "random seed")
		adaptive   = fs.Bool("adaptive", true, "use Adaptive-Sparse-Vector-with-Gap (false = plain Sparse-Vector-with-Gap)")
		confidence = fs.Float64("confidence", 0.95, "confidence level for the Lemma 5 lower bound on each reported count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	counts, err := loadCounts(*dataPath, *synthetic, *scale, *seed)
	if err != nil {
		return err
	}
	if *k <= 0 {
		return fmt.Errorf("k = %d must be positive", *k)
	}

	src := freegap.NewSource(*seed)
	if *threshold == 0 {
		*threshold = freegap.RandomThreshold(src, counts, *k)
	}

	var res *freegap.SVTGapResult
	if *adaptive {
		m, err := freegap.NewAdaptiveSVTWithGap(*k, *eps, *threshold, true)
		if err != nil {
			return err
		}
		res, err = m.Run(src, counts)
		if err != nil {
			return err
		}
	} else {
		m, err := freegap.NewSVTWithGap(*k, *eps, *threshold, true)
		if err != nil {
			return err
		}
		res, err = m.Run(src, counts)
		if err != nil {
			return err
		}
	}

	// Lemma 5 rates: threshold noise Laplace(1/eps0), monotone query noise
	// Laplace(1/eps1) for the middle branch (the dominant one for plain SVT).
	theta := freegap.ThetaLyu(*k, true)
	eps0 := theta * *eps
	eps1 := (1 - theta) * *eps / float64(*k)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "item\tbranch\tgap above threshold\testimated count\tlower bound")
	for _, it := range res.AboveItems() {
		estimate := it.Gap + *threshold
		lower, err := freegap.GapLowerConfidenceBound(it.Gap, *threshold, *confidence, eps0, eps1)
		if err != nil {
			lower = math.Inf(-1)
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%.2f\n", it.Index, it.Branch, it.Gap, estimate, lower)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("threshold: %.2f\n", *threshold)
	fmt.Printf("above-threshold answers: %d\n", res.AboveCount)
	fmt.Printf("privacy budget: spent %.4g of %.4g (%.1f%% remaining)\n",
		res.BudgetSpent, res.Budget, 100*res.RemainingFraction())
	return nil
}

func loadCounts(dataPath, synthetic string, scale int, seed uint64) ([]float64, error) {
	switch {
	case dataPath != "" && synthetic != "":
		return nil, fmt.Errorf("use either -data or -synthetic, not both")
	case dataPath != "":
		db, err := freegap.ReadFIMIFile(dataPath)
		if err != nil {
			return nil, err
		}
		return db.ItemCounts(), nil
	case synthetic != "":
		var db *freegap.Dataset
		switch synthetic {
		case "bmspos":
			db = freegap.NewSyntheticBMSPOS(seed, scale)
		case "kosarak":
			db = freegap.NewSyntheticKosarak(seed, scale)
		case "quest":
			db = freegap.NewSyntheticT40I10D100K(seed, scale)
		default:
			return nil, fmt.Errorf("unknown synthetic dataset %q (valid: bmspos, kosarak, quest)", synthetic)
		}
		return db.ItemCounts(), nil
	default:
		return nil, fmt.Errorf("provide -data FILE or -synthetic NAME")
	}
}
