package rng

import (
	"math"
	"math/bits"
	"sync"
)

// Source is the minimal interface every sampler in this package draws from.
// It matches the shape of math/rand/v2 sources but is defined locally so the
// library has no dependency on a particular standard-library generation.
type Source interface {
	// Uint64 returns a uniformly distributed 64-bit value.
	Uint64() uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is used both as a seed expander for xoshiro256** and as the
// stream-splitting function, following the recommendation of Blackman and
// Vigna.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro is a xoshiro256** generator. It is deterministic, fast, and has a
// period of 2^256−1, which is more than sufficient for the Monte-Carlo
// experiment sizes used by the harness. The zero value is not a valid
// generator; use NewXoshiro or Split.
type Xoshiro struct {
	s [4]uint64
}

// NewXoshiro returns a generator seeded from the given seed via SplitMix64,
// as recommended by the xoshiro authors to avoid correlated low-entropy
// states.
func NewXoshiro(seed uint64) *Xoshiro {
	x := &Xoshiro{}
	sm := seed
	for i := range x.s {
		x.s[i] = splitmix64(&sm)
	}
	// Guard against the all-zero state, which is a fixed point.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (x *Xoshiro) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's future output. It hashes the current state through SplitMix64
// so that repeated splits from the same point yield distinct children.
func (x *Xoshiro) Split() *Xoshiro {
	seed := x.Uint64()
	return NewXoshiro(seed ^ 0xa3ec647659359acd)
}

// Float64 returns a uniform value in the open interval (0, 1). The open
// interval matters: the inverse-CDF Laplace sampler evaluates log(u) and
// log(1−u), so 0 and 1 must never be produced.
func Float64(src Source) float64 {
	for {
		// 53 random mantissa bits, shifted into [0,1).
		u := float64(src.Uint64()>>11) * (1.0 / (1 << 53))
		if u > 0 && u < 1 {
			return u
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded rejection method.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	for {
		v := src.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using Fisher-Yates.
func Perm(src Source, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := Intn(src, i+1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Normal returns a standard normal sample using the Box-Muller transform.
// It is only used by test utilities and synthetic data generators; none of
// the privacy mechanisms rely on Gaussian noise.
func Normal(src Source) float64 {
	u1 := Float64(src)
	u2 := Float64(src)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Poisson returns a Poisson(λ) sample. For small λ it uses Knuth's product
// method; for large λ it falls back to the normal approximation rounded to a
// non-negative integer, which is accurate enough for transaction-length
// generation in the Quest dataset generator.
func Poisson(src Source, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			k++
			p *= Float64(src)
			if p <= l {
				return k - 1
			}
		}
	}
	n := Normal(src)*math.Sqrt(lambda) + lambda
	if n < 0 {
		return 0
	}
	return int(math.Round(n))
}

// LockedSource wraps a Source with a mutex so it can be shared by concurrent
// workers (the experiment harness fans trials out across goroutines).
type LockedSource struct {
	mu  sync.Mutex
	src Source
}

// NewLockedSource returns a concurrency-safe view of src.
func NewLockedSource(src Source) *LockedSource {
	return &LockedSource{src: src}
}

// Uint64 implements Source.
func (l *LockedSource) Uint64() uint64 {
	l.mu.Lock()
	v := l.src.Uint64()
	l.mu.Unlock()
	return v
}
