package server

// Tests for the observability layer: request-id propagation, inline ?trace=1
// stage breakdowns, the structured access log, the Prometheus scrape's
// well-formedness, and the pprof gating.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRequestIDEchoedOnSuccessAndError(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 5})

	// A valid client-supplied id is echoed verbatim on the response header.
	body, _ := json.Marshal(TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/topk", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "client-chose-this.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-chose-this.1" {
		t.Errorf("echoed id = %q, want the client-supplied one", got)
	}

	// Without a client id the server generates one and error bodies carry it.
	resp2, data := postJSON(t, ts.URL+"/v1/nope", map[string]any{"tenant": "acme"})
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, body = %s", resp2.StatusCode, data)
	}
	headerID := resp2.Header.Get("X-Request-ID")
	if len(headerID) != 16 {
		t.Errorf("generated id = %q, want 16 hex chars", headerID)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.RequestID != headerID {
		t.Errorf("body request_id = %q, header = %q; want equal", env.Error.RequestID, headerID)
	}

	// A hostile id (header injection shape, overlong) is replaced, not echoed.
	req3, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/topk", bytes.NewReader(body))
	req3.Header.Set("X-Request-ID", strings.Repeat("x", 200))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("overlong client id echoed as %q, want a generated 16-char id", got)
	}
}

// traceResponse is the slice of a mechanism response the trace tests need.
type traceResponse struct {
	Trace *TraceJSON `json:"trace"`
}

// checkTrace asserts the structural invariants every ?trace=1 payload must
// hold: all stages present in pipeline order, contiguous monotone spans, and
// stage durations summing to the reported total within 5%.
func checkTrace(t *testing.T, tr *TraceJSON, wantID string) {
	t.Helper()
	if tr == nil {
		t.Fatal("response carries no trace")
	}
	if tr.RequestID != wantID {
		t.Errorf("trace request_id = %q, want %q", tr.RequestID, wantID)
	}
	if len(tr.Stages) != int(numStages) {
		t.Fatalf("trace has %d stages, want %d", len(tr.Stages), numStages)
	}
	var sum, cursor float64
	for i, st := range tr.Stages {
		if st.Name != stageNames[i] {
			t.Errorf("stages[%d] = %q, want %q", i, st.Name, stageNames[i])
		}
		if st.Micros < 0 {
			t.Errorf("stage %s duration %v < 0", st.Name, st.Micros)
		}
		if math.Abs(st.StartMicros-cursor) > 1e-6 {
			t.Errorf("stage %s starts at %v, want contiguous %v", st.Name, st.StartMicros, cursor)
		}
		cursor = st.StartMicros + st.Micros
		sum += st.Micros
	}
	if tr.TotalMicros <= 0 {
		t.Fatalf("total_us = %v, want > 0", tr.TotalMicros)
	}
	if diff := math.Abs(sum-tr.TotalMicros) / tr.TotalMicros; diff > 0.05 {
		t.Errorf("stage sum %vµs vs total %vµs: off by %.1f%%, want <= 5%%", sum, tr.TotalMicros, diff*100)
	}
}

func TestTraceInlineBreakdown(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 50})

	resp, data := postJSON(t, ts.URL+"/v1/topk?trace=1",
		TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	tr := decodeInto[traceResponse](t, data)
	checkTrace(t, tr.Trace, resp.Header.Get("X-Request-ID"))

	// The same request without ?trace=1 must not carry a trace.
	_, plain := postJSON(t, ts.URL+"/v1/topk",
		TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	if bytes.Contains(plain, []byte(`"trace"`)) {
		t.Errorf("untraced response carries a trace: %s", plain)
	}

	// Batch requests trace the same way, at the batch level.
	item, _ := json.Marshal(TopKRequest{Common: Common{Epsilon: 0.5, Answers: testAnswers, Monotonic: true}, K: 2})
	resp2, data2 := postJSON(t, ts.URL+"/v1/batch?trace=1", BatchRequest{
		Tenant:   "acme",
		Requests: []BatchItem{{Mechanism: "topk", Request: item}, {Mechanism: "topk", Request: item}},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body = %s", resp2.StatusCode, data2)
	}
	batch := decodeInto[BatchResponse](t, data2)
	checkTrace(t, batch.Trace, resp2.Header.Get("X-Request-ID"))
}

func TestAccessLogRecords(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{TenantBudget: 5, AccessLog: logger})

	resp, data := postJSON(t, ts.URL+"/v1/topk",
		TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["mechanism"] != "topk" || rec["tenant"] != "acme" {
		t.Errorf("record fields = %v, want mechanism topk / tenant acme", rec)
	}
	if rec["request_id"] != resp.Header.Get("X-Request-ID") {
		t.Errorf("logged request_id = %v, header = %q", rec["request_id"], resp.Header.Get("X-Request-ID"))
	}
	if st, _ := rec["status"].(float64); st != http.StatusOK {
		t.Errorf("logged status = %v, want 200", rec["status"])
	}
	if eps, _ := rec["epsilon"].(float64); eps != 1.0 {
		t.Errorf("logged epsilon = %v, want 1", rec["epsilon"])
	}
	if total, _ := rec["total_us"].(float64); total <= 0 {
		t.Errorf("logged total_us = %v, want > 0", rec["total_us"])
	}
	for _, stage := range []string{"decode_us", "execute_us", "encode_us"} {
		if _, ok := rec[stage].(float64); !ok {
			t.Errorf("record missing stage timing %s: %v", stage, rec)
		}
	}
}

func TestSlowRequestLogAlwaysFires(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	// Threshold of 1ns: every request is "slow", so the record must be
	// emitted at warn level even though this is the access logger.
	_, ts := newTestServer(t, Config{TenantBudget: 5, AccessLog: logger, SlowRequestThreshold: time.Nanosecond})

	postJSON(t, ts.URL+"/v1/topk",
		TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow log is not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["level"] != "WARN" || rec["msg"] != "slow request" {
		t.Errorf("record = %v, want level WARN msg \"slow request\"", rec)
	}

	// A negative threshold disables slow logging; with no access logger
	// either, nothing should be emitted anywhere user-visible — exercised
	// here just to cover the config path.
	_, ts2 := newTestServer(t, Config{TenantBudget: 5, SlowRequestThreshold: -1})
	resp, data := postJSON(t, ts2.URL+"/v1/topk",
		TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
}

// metricLine matches one Prometheus text exposition sample line.
var metricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// TestMetricsScrapeWellFormed drives traffic over several endpoints and then
// validates the whole /metrics exposition line by line: every sample parses,
// every metric name carries exactly one TYPE header, histogram buckets are
// cumulative with +Inf == _count, and the new observability series exist.
func TestMetricsScrapeWellFormed(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 5})

	postJSON(t, ts.URL+"/v1/topk", TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	postJSON(t, ts.URL+"/v1/nope", map[string]any{"tenant": "acme"})
	getJSON(t, ts.URL+"/v1/tenants/acme/budget")

	resp, data := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scrape content type = %q", ct)
	}

	typed := make(map[string]string)
	lastBucket := make(map[string]uint64) // series prefix → last cumulative count
	values := make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if prev, dup := typed[fields[2]]; dup {
				t.Errorf("metric %s declared TYPE twice (%s, %s)", fields[2], prev, fields[3])
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparsable sample line %q", line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		values[m[1]+m[2]] = m[3]
		if strings.HasSuffix(m[1], "_bucket") {
			// Cumulative within one series: strip the le label to key the
			// series, then require non-decreasing counts in file order.
			key := m[1] + stripLe(m[2])
			n, err := strconv.ParseUint(m[3], 10, 64)
			if err != nil {
				t.Fatalf("bucket count in %q: %v", line, err)
			}
			if n < lastBucket[key] {
				t.Errorf("bucket counts regress at %q", line)
			}
			lastBucket[key] = n
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"freegap_requests_total", "freegap_request_seconds", "freegap_stage_seconds",
		"freegap_build_info", "freegap_uptime_seconds", "freegap_tenant_remaining_epsilon",
		"freegap_admission_cas_retries_total",
	} {
		if _, ok := typed[want]; !ok {
			t.Errorf("scrape missing metric %s", want)
		}
	}
	if typed["freegap_request_seconds"] != "histogram" || typed["freegap_stage_seconds"] != "histogram" {
		t.Errorf("latency metrics not typed histogram: %v %v",
			typed["freegap_request_seconds"], typed["freegap_stage_seconds"])
	}
	// One topk request was served: its latency series counts exactly one
	// observation and +Inf agrees with _count.
	inf := values[`freegap_request_seconds_bucket{mechanism="topk",le="+Inf"}`]
	count := values[`freegap_request_seconds_count{mechanism="topk"}`]
	if inf != "1" || count != "1" {
		t.Errorf("topk latency +Inf = %q, _count = %q, want both 1", inf, count)
	}
	// The tenant gauge reflects the ε spent: budget 5 − 1 charged = 4.
	if got := values[`freegap_tenant_remaining_epsilon{tenant="acme"}`]; got != "4" {
		t.Errorf("tenant remaining gauge = %q, want 4", got)
	}
	if v := values[`freegap_build_info{go_version="`+runtime.Version()+`",version="`+Version+`"}`]; v != "1" {
		t.Errorf("build info sample = %q, want 1 (typed %v)", v, typed["freegap_build_info"])
	}
}

// stripLe removes the le pair from a rendered label block so bucket lines of
// one series share a key.
var leLabel = regexp.MustCompile(`,?le="[^"]*"`)

func stripLe(labels string) string { return leLabel.ReplaceAllString(labels, "") }

func TestDebugPprofGated(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 5})
	resp, _ := getJSON(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without Debug: status = %d, want 404", resp.StatusCode)
	}

	_, tsDebug := newTestServer(t, Config{TenantBudget: 5, Debug: true})
	resp2, _ := getJSON(t, tsDebug.URL+"/debug/pprof/")
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof with Debug: status = %d, want 200", resp2.StatusCode)
	}
	// Debug also turns on runtime gauges in the scrape.
	_, data := getJSON(t, tsDebug.URL+"/metrics")
	if !bytes.Contains(data, []byte("freegap_goroutines")) {
		t.Errorf("debug scrape missing runtime gauges")
	}
}

func TestHealthzReportsWALGeneration(t *testing.T) {
	dir := t.TempDir()
	_, ts := newPersistentServer(t, dir, 10)
	_, data := getJSON(t, ts.URL+"/healthz")
	health := decodeInto[HealthResponse](t, data)
	if health.WALGeneration < 1 {
		t.Errorf("wal_generation = %d, want >= 1 on a persistent server", health.WALGeneration)
	}
	if health.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", health.UptimeSeconds)
	}
}
