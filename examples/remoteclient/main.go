// Remoteclient drives the dpserver HTTP API end-to-end: it runs
// Noisy-Max-with-Gap, Noisy-Top-K-with-Gap and Adaptive-Sparse-Vector-with-
// Gap over the wire as a tenant, runs the paper's full select–measure–refine
// protocol through the pipeline endpoint, amortizes a round trip with an
// atomically-charged batch, catalogues a dataset server-side and queries it
// by name (no inline answers — the curator holds the data and serves cached
// item counts), watches its privacy budget drain through the budget
// endpoint, demonstrates durable state by restarting a WAL-backed server and
// reading the surviving ledger, and keeps querying until the server answers
// with the structured budget-exhausted error.
//
// Point it at a running server:
//
//	dpserver -addr :8080 &
//	go run ./examples/remoteclient -addr http://localhost:8080
//
// or run it with no flags to have it boot an in-process server on an
// ephemeral port and talk to that.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	freegap "github.com/freegap/freegap"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running dpserver (empty = start one in-process)")
	tenant := flag.String("tenant", "examples", "tenant id to spend budget as")
	flag.Parse()

	base := *addr
	if base == "" {
		srv, err := freegap.NewServer(freegap.ServerConfig{TenantBudget: 8, Seed: 42, Workers: 1})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process dpserver at %s (tenant budget ε=8)\n\n", base)
	}

	products := []string{"apples", "bananas", "cherries", "dates", "eggs", "figs", "grapes", "honey"}
	counts := []float64{812, 641, 633, 601, 425, 124, 77, 8}

	// 1. Noisy-Max-with-Gap over the wire: best seller plus its free margin.
	var max struct {
		Index           int     `json:"index"`
		Gap             float64 `json:"gap"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	mustPost(base+"/v1/max", map[string]any{
		"tenant": *tenant, "epsilon": 0.5, "answers": counts, "monotonic": true,
	}, &max)
	fmt.Printf("best seller (eps=0.5): %s, ahead by ≈%.0f — budget left %.2f\n\n",
		products[max.Index], max.Gap, max.BudgetRemaining)

	// 2. Noisy-Top-K-with-Gap: top three with the gaps between them.
	var topk struct {
		Selections []struct {
			Index int     `json:"index"`
			Gap   float64 `json:"gap"`
		} `json:"selections"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	mustPost(base+"/v1/topk", map[string]any{
		"tenant": *tenant, "k": 3, "epsilon": 1.0, "answers": counts, "monotonic": true,
	}, &topk)
	fmt.Println("top 3 products (eps=1.0):")
	for rank, sel := range topk.Selections {
		fmt.Printf("  #%d %-9s leads the next candidate by ≈%.0f\n", rank+1, products[sel.Index], sel.Gap)
	}
	fmt.Printf("budget left: %.2f\n\n", topk.BudgetRemaining)

	// 3. Adaptive-Sparse-Vector-with-Gap: which products sold over 500?
	var svt struct {
		Above []struct {
			Index    int     `json:"index"`
			Estimate float64 `json:"estimate"`
			Branch   string  `json:"branch"`
		} `json:"above"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	mustPost(base+"/v1/svt", map[string]any{
		"tenant": *tenant, "k": 3, "epsilon": 1.5, "threshold": 500.0,
		"answers": counts, "monotonic": true, "adaptive": true,
	}, &svt)
	fmt.Println("products selling over ≈500 (eps=1.5, adaptive):")
	for _, a := range svt.Above {
		fmt.Printf("  %-9s ≈%.0f sales (%s branch)\n", products[a.Index], a.Estimate, a.Branch)
	}
	fmt.Printf("budget left: %.2f\n\n", svt.BudgetRemaining)

	// 4. The full Section 5.2 protocol in one request: select the top three,
	// measure them, and refine the measurements with the free gaps.
	var pipe struct {
		Estimates []struct {
			Index    int     `json:"index"`
			Measured float64 `json:"measured"`
			Refined  float64 `json:"refined"`
		} `json:"estimates"`
		TheoreticalErrorRatio float64 `json:"theoretical_error_ratio"`
		BudgetRemaining       float64 `json:"budget_remaining"`
	}
	mustPost(base+"/v1/pipeline/topk", map[string]any{
		"tenant": *tenant, "k": 3, "epsilon": 2.0, "answers": counts, "monotonic": true,
	}, &pipe)
	fmt.Println("select–measure–refine pipeline (eps=2.0):")
	for _, est := range pipe.Estimates {
		fmt.Printf("  %-9s measured ≈%.0f, gap-refined ≈%.0f\n",
			products[est.Index], est.Measured, est.Refined)
	}
	fmt.Printf("refined-vs-measured error ratio: %.2f — budget left %.2f\n\n",
		pipe.TheoreticalErrorRatio, pipe.BudgetRemaining)

	// 5. Two more queries in one round trip: the batch is charged atomically
	// (all-or-nothing), so it can never overspend what serial requests could.
	var batch struct {
		Results []struct {
			Mechanism string          `json:"mechanism"`
			Response  json.RawMessage `json:"response"`
		} `json:"results"`
		EpsilonSpent    float64 `json:"epsilon_spent"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	mustPost(base+"/v1/batch", map[string]any{
		"tenant": *tenant,
		"requests": []map[string]any{
			{"mechanism": "max", "request": map[string]any{
				"epsilon": 0.5, "answers": counts, "monotonic": true,
			}},
			{"mechanism": "svt", "request": map[string]any{
				"k": 2, "epsilon": 1.0, "threshold": 600.0, "answers": counts,
				"monotonic": true, "adaptive": true,
			}},
		},
	}, &batch)
	fmt.Printf("batch of %d requests in one round trip (eps=%.1f total):\n",
		len(batch.Results), batch.EpsilonSpent)
	for _, res := range batch.Results {
		fmt.Printf("  %-4s → %s\n", res.Mechanism, res.Response)
	}
	fmt.Printf("budget left: %.2f\n\n", batch.BudgetRemaining)

	// 6. Move the data server-side: catalogue a dataset (the curator trust
	// model — the server holds the transactions and precomputes the item
	// counts once at registration) and query it by name, with no inline
	// answers in the request at all.
	var ds struct {
		Name    string `json:"name"`
		Records int    `json:"records"`
		Items   int    `json:"items"`
	}
	resp, data := post(base+"/v1/datasets", map[string]any{
		"name": "shop", "synthetic": map[string]any{"kind": "bmspos", "scale": 2000, "seed": 7},
	})
	switch resp.StatusCode {
	case http.StatusCreated:
		if err := json.Unmarshal(data, &ds); err != nil {
			log.Fatalf("decoding dataset response: %v", err)
		}
		fmt.Printf("catalogued dataset %q server-side: %d transactions over %d items\n",
			ds.Name, ds.Records, ds.Items)
	case http.StatusConflict:
		// A previous walkthrough against this server already registered it;
		// the catalog is immutable, so just query the existing entry.
		mustGet(base+"/v1/datasets/shop", &ds)
		fmt.Printf("dataset %q already catalogued (%d transactions over %d items) — reusing it\n",
			ds.Name, ds.Records, ds.Items)
	default:
		log.Fatalf("POST /v1/datasets: HTTP %d: %s", resp.StatusCode, data)
	}

	var dstopk struct {
		Selections []struct {
			Index int     `json:"index"`
			Gap   float64 `json:"gap"`
		} `json:"selections"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	mustPost(base+"/v1/topk", map[string]any{
		"tenant": *tenant, "k": 3, "epsilon": 0.5,
		"dataset": "shop", "queries": map[string]any{"kind": "all_items"},
	}, &dstopk)
	fmt.Println("top 3 items of the server-held dataset (eps=0.5, zero answers shipped):")
	for rank, sel := range dstopk.Selections {
		fmt.Printf("  #%d item %-5d leads the next candidate by ≈%.0f\n", rank+1, sel.Index, sel.Gap)
	}

	var dsinfo struct {
		Resolutions uint64 `json:"resolutions"`
		CountScans  uint64 `json:"count_scans"`
	}
	mustGet(base+"/v1/datasets/shop", &dsinfo)
	fmt.Printf("dataset ledger: %d resolutions served from %d count scan(s) — cached, never rescanned\n\n",
		dsinfo.Resolutions, dsinfo.CountScans)

	// 7. The ledger, as the server sees it — now with the spend broken down
	// by mechanism.
	var budget struct {
		Budget           float64            `json:"budget"`
		Spent            float64            `json:"spent"`
		Remaining        float64            `json:"remaining"`
		Charges          int                `json:"charges"`
		SpentByMechanism map[string]float64 `json:"spent_by_mechanism"`
	}
	mustGet(base+"/v1/tenants/"+*tenant+"/budget", &budget)
	fmt.Printf("ledger: spent %.2f of %.2f over %d charges, %.2f remaining\n",
		budget.Spent, budget.Budget, budget.Charges, budget.Remaining)
	for mech, eps := range budget.SpentByMechanism {
		fmt.Printf("  %-14s ε=%.2f\n", mech, eps)
	}
	fmt.Println()

	// 8. Durability: a persistent server journals every admitted charge to a
	// write-ahead log, so a restart resumes with the exact spent budget
	// instead of silently refunding it. Demonstrated with a private server
	// pair on a scratch state directory (skipped when talking to a remote
	// server — its state directory is its own business).
	if *addr == "" {
		demonstrateDurability(*tenant, counts)
	}

	// 9. Keep spending until the server cuts us off with a structured 402.
	for i := 0; ; i++ {
		resp, body := post(base+"/v1/max", map[string]any{
			"tenant": *tenant, "epsilon": 0.75, "answers": counts, "monotonic": true,
		})
		if resp.StatusCode == http.StatusOK {
			fmt.Printf("extra query %d admitted\n", i+1)
			continue
		}
		var env struct {
			Error struct {
				Code      string   `json:"code"`
				Message   string   `json:"message"`
				Remaining *float64 `json:"remaining"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			log.Fatalf("unexpected error body: %s", body)
		}
		if env.Error.Code != "budget_exhausted" {
			log.Fatalf("unexpected refusal (HTTP %d): %s", resp.StatusCode, body)
		}
		remaining := 0.0
		if env.Error.Remaining != nil {
			remaining = *env.Error.Remaining
		}
		fmt.Printf("server refused query %d: HTTP %d, code=%s, remaining ε=%.2f\n",
			i+1, resp.StatusCode, env.Error.Code, remaining)
		fmt.Println("the privacy budget is spent — no more answers for this tenant.")
		return
	}
}

func post(url string, body any) (*http.Response, []byte) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	return resp, buf.Bytes()
}

// mustPost decodes a successful response into out. A budget_exhausted
// rejection ends the walkthrough gracefully instead — a server provisioned
// with a small tenant budget can cut us off at any step.
func mustPost(url string, body, out any) {
	resp, data := post(url, body)
	if resp.StatusCode == http.StatusPaymentRequired {
		fmt.Printf("server cut us off early: %s\nthe privacy budget is spent — no more answers for this tenant.\n", data)
		os.Exit(0)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		log.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("POST %s: decoding response: %v", url, err)
	}
}

func mustGet(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, buf.Bytes())
	}
	if err := json.Unmarshal(buf.Bytes(), out); err != nil {
		log.Fatalf("GET %s: decoding response: %v", url, err)
	}
}

// demonstrateDurability boots a persistent dpserver on a scratch state
// directory, spends budget as tenant, shuts it down cleanly, boots a second
// server on the same directory and reads the ledger back: the spent budget
// (and its per-mechanism breakdown) survives the restart.
func demonstrateDurability(tenant string, counts []float64) {
	stateDir, err := os.MkdirTemp("", "dpserver-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)

	boot := func() (*freegap.Server, string) {
		lg, err := freegap.OpenPersist(stateDir, freegap.PersistOptions{})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := freegap.NewServer(freegap.ServerConfig{TenantBudget: 4, Seed: 7, Workers: 1, Persist: lg})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		return srv, "http://" + ln.Addr().String()
	}
	shutdown := func(srv *freegap.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
	}

	srv1, base1 := boot()
	var first struct {
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	mustPost(base1+"/v1/topk", map[string]any{
		"tenant": tenant, "k": 3, "epsilon": 1.5, "answers": counts, "monotonic": true,
	}, &first)
	fmt.Printf("durable server: spent eps=1.5, %.2f remaining — shutting it down\n", first.BudgetRemaining)
	shutdown(srv1) // flushes the WAL and compacts it into a snapshot

	srv2, base2 := boot() // same state directory: the ledger is replayed
	var ledger struct {
		Spent            float64            `json:"spent"`
		Remaining        float64            `json:"remaining"`
		SpentByMechanism map[string]float64 `json:"spent_by_mechanism"`
	}
	mustGet(base2+"/v1/tenants/"+tenant+"/budget", &ledger)
	fmt.Printf("after restart from %s: spent %.2f (topk ε=%.2f), %.2f remaining — nothing was refunded\n\n",
		stateDir, ledger.Spent, ledger.SpentByMechanism["topk"], ledger.Remaining)
	shutdown(srv2)
}
