package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/freegap/freegap/internal/store"
	"github.com/freegap/freegap/internal/telemetry"
)

// descendingFIMI is a five-item dataset whose counts are exactly
// [5, 4, 3, 2, 1]: item 0 appears in every record, item 4 in one.
const descendingFIMI = "0 1 2 3 4\n0 1 2 3\n0 1 2\n0 1\n0\n"

func uploadDescending(t *testing.T, base, name string) {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/datasets", DatasetUploadRequest{Name: name, FIMI: descendingFIMI})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body = %s", resp.StatusCode, data)
	}
}

func TestDatasetUploadAndInventory(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	resp, data := getJSON(t, ts.URL+"/v1/datasets/sales")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d, body = %s", resp.StatusCode, data)
	}
	info := decodeInto[DatasetInfo](t, data)
	if info.Name != "sales" || info.Records != 5 || info.Items != 5 || info.Source != "upload:fimi" {
		t.Errorf("info = %+v", info)
	}
	if info.CountScans != 1 {
		t.Errorf("CountScans = %d, want 1 (the registration precompute)", info.CountScans)
	}

	resp, data = getJSON(t, ts.URL+"/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	list := decodeInto[DatasetListResponse](t, data)
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "sales" {
		t.Errorf("list = %+v", list)
	}

	// The inventory shows up on /healthz too.
	resp, data = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if health := decodeInto[HealthResponse](t, data); health.Datasets != 1 {
		t.Errorf("healthz datasets = %d, want 1", health.Datasets)
	}
}

func TestDatasetUploadRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	// Duplicate name: structured 409.
	resp, data := postJSON(t, ts.URL+"/v1/datasets", DatasetUploadRequest{Name: "sales", FIMI: descendingFIMI})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status = %d, body = %s", resp.StatusCode, data)
	}
	if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeDatasetExists {
		t.Errorf("duplicate code = %q, want %q", env.Error.Code, CodeDatasetExists)
	}

	bad := []DatasetUploadRequest{
		{Name: "neither"},
		{Name: "both", FIMI: "0 1\n", Synthetic: &SyntheticSpec{Kind: "bmspos"}},
		{Name: "Bad Name", FIMI: "0 1\n"},
		{Name: "badkind", Synthetic: &SyntheticSpec{Kind: "nope"}},
		{Name: "baddata", FIMI: "not numbers\n"},
	}
	for _, req := range bad {
		resp, data := postJSON(t, ts.URL+"/v1/datasets", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status = %d, body = %s", req.Name, resp.StatusCode, data)
		}
	}
}

func TestDatasetUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 128})
	big := DatasetUploadRequest{Name: "big", FIMI: strings.Repeat("0 1 2\n", 100)}
	resp, data := postJSON(t, ts.URL+"/v1/datasets", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeRequestTooLarge {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeRequestTooLarge)
	}
}

func TestDatasetSyntheticUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postJSON(t, ts.URL+"/v1/datasets", DatasetUploadRequest{
		Name: "demo", Synthetic: &SyntheticSpec{Kind: "bmspos", Scale: 1000, Seed: 7},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	info := decodeInto[DatasetInfo](t, data)
	if info.Records == 0 || info.Items == 0 || info.Source != "synthetic:bmspos" {
		t.Errorf("info = %+v", info)
	}
}

// TestResolvedTopKEndToEnd is the acceptance path: POST /v1/topk naming a
// preloaded dataset and an all_items query spec, no inline answers, returns
// selections computed from the server-held data.
func TestResolvedTopKEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:      1,
		TenantBudget: 1000,
		Datasets: func() *store.Store {
			st := store.New()
			db, err := store.GenerateSynthetic("bmspos", 1000, 7)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Register("pos", "synthetic:bmspos", db); err != nil {
				t.Fatal(err)
			}
			return st
		}(),
	})

	resp, data := postJSON(t, ts.URL+"/v1/topk", map[string]any{
		"tenant": "acme", "k": 3, "epsilon": 100.0,
		"dataset": "pos", "queries": map[string]any{"kind": "all_items"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	out := decodeInto[TopKResponse](t, data)
	if len(out.Selections) != 3 {
		t.Fatalf("selections = %+v", out.Selections)
	}
	entry, err := s.Datasets().Get("pos")
	if err != nil {
		t.Fatal(err)
	}
	items := entry.Dataset().NumItems()
	for _, sel := range out.Selections {
		if sel.Index < 0 || sel.Index >= items {
			t.Errorf("selection index %d outside the %d-item universe", sel.Index, items)
		}
	}
	if out.EpsilonSpent != 100.0 {
		t.Errorf("epsilon spent = %v, want 100", out.EpsilonSpent)
	}
}

func TestResolvedTopKMatchesCounts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TenantBudget: 1e6})
	uploadDescending(t, ts.URL, "sales")

	// With ε = 1000 over 5 counting queries the noise is ~5e-3, so the true
	// descending order 0 > 1 > 2 is selected with overwhelming probability.
	resp, data := postJSON(t, ts.URL+"/v1/topk", map[string]any{
		"tenant": "acme", "k": 2, "epsilon": 1000.0,
		"dataset": "sales", "queries": map[string]any{"kind": "all_items"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	out := decodeInto[TopKResponse](t, data)
	if len(out.Selections) != 2 || out.Selections[0].Index != 0 || out.Selections[1].Index != 1 {
		t.Errorf("selections = %+v, want items 0 then 1", out.Selections)
	}
}

func TestResolvedSVTItemCount(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TenantBudget: 1e6})
	uploadDescending(t, ts.URL, "sales")

	resp, data := postJSON(t, ts.URL+"/v1/svt", map[string]any{
		"tenant": "acme", "k": 1, "epsilon": 1000.0, "threshold": 4.5,
		"dataset": "sales", "queries": map[string]any{"kind": "item_count", "items": []int32{4, 0}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	out := decodeInto[SVTResponse](t, data)
	// Counts resolve to [1, 5]; only the second (item 0, count 5) clears 4.5.
	if out.AboveCount != 1 || len(out.Above) != 1 || out.Above[0].Index != 1 {
		t.Errorf("svt = %+v, want exactly answer index 1 above threshold", out)
	}
}

func TestResolvedPipelineAndBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TenantBudget: 1000})
	uploadDescending(t, ts.URL, "sales")

	// The Section 5.2 pipeline gains dataset resolution through the same
	// generic serving path.
	resp, data := postJSON(t, ts.URL+"/v1/pipeline/topk", map[string]any{
		"tenant": "acme", "k": 2, "epsilon": 100.0,
		"dataset": "sales", "queries": map[string]any{"kind": "all_items"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline status = %d, body = %s", resp.StatusCode, data)
	}
	if out := decodeInto[PipelineTopKResponse](t, data); len(out.Estimates) != 2 {
		t.Errorf("estimates = %+v", out.Estimates)
	}

	// A batch mixing an inline item with a dataset-backed one.
	mkItem := func(v any) json.RawMessage {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	resp, data = postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Tenant: "acme",
		Requests: []BatchItem{
			{Mechanism: "max", Request: mkItem(map[string]any{"epsilon": 0.5, "answers": []float64{3, 1}, "monotonic": true})},
			{Mechanism: "topk", Request: mkItem(map[string]any{"epsilon": 1.0, "k": 1, "dataset": "sales", "queries": map[string]any{"kind": "all_items"}})},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body = %s", resp.StatusCode, data)
	}
	batch := decodeInto[BatchResponse](t, data)
	if len(batch.Results) != 2 {
		t.Fatalf("results = %+v", batch.Results)
	}
	for i, res := range batch.Results {
		if res.Error != nil {
			t.Errorf("results[%d] failed: %+v", i, res.Error)
		}
	}
	if batch.EpsilonSpent != 1.5 {
		t.Errorf("batch epsilon = %v, want 1.5", batch.EpsilonSpent)
	}
}

func TestResolveUnknownDataset(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := postJSON(t, ts.URL+"/v1/topk", map[string]any{
		"tenant": "acme", "k": 1, "epsilon": 1.0,
		"dataset": "nope", "queries": map[string]any{"kind": "all_items"},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeUnknownDataset {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeUnknownDataset)
	}

	// Unknown dataset inside a batch rejects the whole batch with the same
	// structured code, before any ε is reserved.
	item, _ := json.Marshal(map[string]any{"epsilon": 1.0, "k": 1, "dataset": "nope", "queries": map[string]any{"kind": "all_items"}})
	resp, data = postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Tenant:   "acme",
		Requests: []BatchItem{{Mechanism: "topk", Request: item}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("batch status = %d, body = %s", resp.StatusCode, data)
	}
	if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeUnknownDataset {
		t.Errorf("batch code = %q, want %q", env.Error.Code, CodeUnknownDataset)
	}
	// The failed batch must not have charged the tenant (no accountant is
	// even provisioned by a rejected first request's resolution).
	resp, data = getJSON(t, ts.URL+"/v1/tenants/acme/budget")
	if resp.StatusCode == http.StatusOK {
		if budget := decodeInto[BudgetResponse](t, data); budget.Spent != 0 {
			t.Errorf("spent = %v after rejected resolutions, want 0", budget.Spent)
		}
	}
}

func TestResolveBadQuerySpec(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	cases := []map[string]any{
		{"dataset": "sales"}, // dataset without queries
		{"dataset": "sales", "queries": map[string]any{"kind": "nope"}},
		{"dataset": "sales", "queries": map[string]any{"kind": "all_items", "items": []int32{1}}},
		{"dataset": "sales", "queries": map[string]any{"kind": "item_count"}},
		{"dataset": "sales", "queries": map[string]any{"kind": "item_count", "items": []int32{-2}}},
		{"dataset": "sales", "queries": map[string]any{"kind": "all_items"}, "answers": []float64{1, 2}},
		{"queries": map[string]any{"kind": "all_items"}}, // queries without dataset
	}
	for i, extra := range cases {
		body := map[string]any{"tenant": "acme", "k": 1, "epsilon": 1.0}
		for k, v := range extra {
			body[k] = v
		}
		resp, data := postJSON(t, ts.URL+"/v1/topk", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, body = %s", i, resp.StatusCode, data)
			continue
		}
		if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeBadQuerySpec {
			t.Errorf("case %d: code = %q, want %q (body %s)", i, env.Error.Code, CodeBadQuerySpec, data)
		}
	}
}

// TestResolvedRequestsServeCachedCounts pins the tentpole's hot-path
// property: identical resolved requests are answered from the item counts
// precomputed at registration — the transactions are scanned exactly once,
// however many requests resolve — and the cache hits are observable through
// both the dataset inventory and the per-dataset telemetry counter.
func TestResolvedRequestsServeCachedCounts(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	body := map[string]any{
		"tenant": "acme", "k": 2, "epsilon": 0.5,
		"dataset": "sales", "queries": map[string]any{"kind": "all_items"},
	}
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/topk", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, body = %s", i, resp.StatusCode, data)
		}
	}

	resp, data := getJSON(t, ts.URL+"/v1/datasets/sales")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	info := decodeInto[DatasetInfo](t, data)
	if info.Resolutions != 2 {
		t.Errorf("resolutions = %d, want 2", info.Resolutions)
	}
	if info.CountScans != 1 {
		t.Errorf("count scans = %d, want 1: resolved requests must not rescan the dataset", info.CountScans)
	}

	if got := s.Metrics().Counter("freegap_dataset_resolved_total", telemetry.L("dataset", "sales")).Value(); got != 2 {
		t.Errorf("freegap_dataset_resolved_total = %d, want 2", got)
	}
	resp, data = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	want := fmt.Sprintf("freegap_dataset_resolved_total{dataset=%q} 2", "sales")
	if !strings.Contains(string(data), want) {
		t.Errorf("metrics exposition missing %q", want)
	}
}

// TestConfigPreload drives the Config.Preload path end-to-end: the server
// comes up already serving the dataset.
func TestConfigPreload(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Preload: []store.Preload{{Name: "pos", Synthetic: "bmspos", Scale: 1000, Seed: 3}},
	})
	resp, data := getJSON(t, ts.URL+"/v1/datasets/pos")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	if info := decodeInto[DatasetInfo](t, data); info.Source != "synthetic:bmspos" || info.Records == 0 {
		t.Errorf("info = %+v", info)
	}

	resp, data = postJSON(t, ts.URL+"/v1/svt", map[string]any{
		"tenant": "acme", "k": 3, "epsilon": 2.0, "threshold": 50.0, "adaptive": true,
		"dataset": "pos", "queries": map[string]any{"kind": "all_items"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("svt status = %d, body = %s", resp.StatusCode, data)
	}
	// A bad preload must fail construction, not limp along.
	if _, err := New(Config{Preload: []store.Preload{{Name: "bad", Synthetic: "nope"}}}); err == nil {
		t.Error("bad preload accepted")
	}
}
