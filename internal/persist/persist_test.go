package persist

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/dataset"
)

// testOptions keeps flushes fast and compaction manual so tests stay
// deterministic.
func testOptions() Options {
	return Options{Fsync: FsyncOff, FlushInterval: time.Millisecond, CompactEvery: -1}
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func spentOf(ts TenantState) float64 {
	var sum float64
	for _, c := range ts.Charges {
		sum += c.Epsilon
	}
	return sum
}

func spentByLabel(ts TenantState) map[string]float64 {
	out := make(map[string]float64)
	for _, c := range ts.Charges {
		out[c.Label] += c.Epsilon
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1.5}})
	l.AppendCharge("acme", []accountant.Charge{{Label: "svt", Epsilon: 0.5}, {Label: "max", Epsilon: 0.25}})
	l.AppendCharge("globex", []accountant.Charge{{Label: "topk", Epsilon: 2}})
	if err := l.AppendDataset(DatasetRecord{Name: "sales", Source: "upload:fimi", File: "datasets/sales.fimi"}); err != nil {
		t.Fatalf("AppendDataset: %v", err)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := l.Abort(); err != nil { // crash-style close: no compaction
		t.Fatalf("Abort: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); !os.IsNotExist(err) {
		t.Fatalf("Abort wrote a snapshot (err %v)", err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	st := l2.State()
	acme, ok := st.Tenants["acme"]
	if !ok {
		t.Fatal("tenant acme not replayed")
	}
	if got := spentOf(acme); math.Abs(got-2.25) > 1e-12 {
		t.Errorf("acme spent = %v, want 2.25", got)
	}
	if acme.ChargeCount != 3 {
		t.Errorf("acme charge count = %d, want 3", acme.ChargeCount)
	}
	if by := spentByLabel(acme); by["topk"] != 1.5 || by["svt"] != 0.5 || by["max"] != 0.25 {
		t.Errorf("acme by-label = %v", by)
	}
	if got := spentOf(st.Tenants["globex"]); got != 2 {
		t.Errorf("globex spent = %v, want 2", got)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Name != "sales" || st.Datasets[0].File != "datasets/sales.fimi" {
		t.Errorf("datasets = %+v", st.Datasets)
	}
}

func TestCleanCloseCompacts(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	for i := 0; i < 10; i++ {
		l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 0.1}})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Clean shutdown folds everything into the snapshot and retires the WAL
	// segment (header line only).
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatalf("reading WAL: %v", err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 1 {
		t.Errorf("post-Close WAL has %d lines, want 1 (segment header): %q", lines, data)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing after Close: %v", err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	st := l2.State()
	acme := st.Tenants["acme"]
	if got := spentOf(acme); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("restored spent = %v, want 1.0", got)
	}
	if acme.ChargeCount != 10 {
		t.Errorf("restored charge count = %d, want 10 (snapshot must preserve the admitted count)", acme.ChargeCount)
	}
}

func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1}})
	l.AppendCharge("acme", []accountant.Charge{{Label: "svt", Epsilon: 2}})
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := l.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	// Simulate a torn final write: a partial record with no newline.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"charge","tenant":"acme","charges":[{"label":"max","eps`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(walPath)

	l2 := mustOpen(t, dir, testOptions())
	st := l2.State()
	acme := st.Tenants["acme"]
	if got := spentOf(acme); got != 3 {
		t.Errorf("spent after torn tail = %v, want 3 (last complete record)", got)
	}
	if acme.ChargeCount != 2 {
		t.Errorf("charge count = %d, want 2", acme.ChargeCount)
	}
	// The torn bytes must be gone so appends produce a well-formed log.
	after, _ := os.Stat(walPath)
	if after.Size() >= before.Size() {
		t.Errorf("WAL not truncated: %d >= %d bytes", after.Size(), before.Size())
	}
	l2.AppendCharge("acme", []accountant.Charge{{Label: "max", Epsilon: 4}})
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Abort(); err != nil {
		t.Fatal(err)
	}

	l3 := mustOpen(t, dir, testOptions())
	defer l3.Close()
	if got := spentOf(l3.State().Tenants["acme"]); got != 7 {
		t.Errorf("spent after post-recovery append = %v, want 7", got)
	}
}

func TestGarbageTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1}})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort(); err != nil {
		t.Fatal(err)
	}
	// A newline-terminated but unparsable line (e.g. a disk scribble).
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\x00\x00garbage\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	if got := spentOf(l2.State().Tenants["acme"]); got != 1 {
		t.Errorf("spent = %v, want 1", got)
	}
}

func TestStaleGenerationDiscarded(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1}})
	if err := l.Close(); err != nil { // snapshot gen=2, fresh WAL segment gen=2
		t.Fatal(err)
	}

	// Simulate the crash window between snapshot rename and WAL truncate: a
	// WAL whose records the snapshot already covers (older generation).
	stale := `{"kind":"begin","gen":1}` + "\n" +
		`{"kind":"charge","tenant":"acme","charges":[{"label":"topk","epsilon":1}]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, walName), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	if got := spentOf(l2.State().Tenants["acme"]); got != 1 {
		t.Errorf("spent = %v, want 1 (stale segment must not double-count)", got)
	}
}

func TestExplicitCompactAndContinue(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	for i := 0; i < 5; i++ {
		l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1}})
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.AppendCharge("acme", []accountant.Charge{{Label: "svt", Epsilon: 2}})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	acme := l2.State().Tenants["acme"]
	if got := spentOf(acme); got != 7 {
		t.Errorf("spent = %v, want 7 (5 compacted + 2 from WAL)", got)
	}
	if acme.ChargeCount != 6 {
		t.Errorf("charge count = %d, want 6", acme.ChargeCount)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Fsync: FsyncOff, FlushInterval: time.Millisecond, CompactEvery: 8})
	for i := 0; i < 50; i++ {
		l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, snapshotName)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot appeared despite CompactEvery=8")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	if got := spentOf(l2.State().Tenants["acme"]); got != 50 {
		t.Errorf("spent = %v, want 50", got)
	}
}

func TestDatasetBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	db := dataset.New("sales", [][]int32{{0, 1, 2}, {1, 2}, {2}})
	rel, err := l.SaveDatasetBlob("sales", db)
	if err != nil {
		t.Fatalf("SaveDatasetBlob: %v", err)
	}
	if err := l.AppendDataset(DatasetRecord{Name: "sales", Source: "upload:fimi", File: rel}); err != nil {
		t.Fatalf("AppendDataset: %v", err)
	}
	if err := l.AppendDataset(DatasetRecord{Name: "sales", Source: "x"}); err == nil {
		t.Error("duplicate dataset record accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	st := l2.State()
	if len(st.Datasets) != 1 {
		t.Fatalf("datasets = %+v", st.Datasets)
	}
	got, err := dataset.ReadFIMIFile(l2.BlobPath(st.Datasets[0]))
	if err != nil {
		t.Fatalf("reading blob: %v", err)
	}
	if got.NumRecords() != 3 || got.NumItems() != 3 {
		t.Errorf("blob = %d records, %d items; want 3, 3", got.NumRecords(), got.NumItems())
	}
}

func TestFsyncAlwaysDurableWithoutFlush(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1}})
	// No Flush: always-mode appends must already be on disk.
	if err := l.Abort(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	if got := spentOf(l2.State().Tenants["acme"]); got != 1 {
		t.Errorf("spent = %v, want 1", got)
	}
}

func TestAppendAfterCloseDropped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 1}}) // must not panic
	if err := l.AppendDataset(DatasetRecord{Name: "d"}); err == nil {
		t.Error("AppendDataset after Close succeeded")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), Options{Fsync: "sometimes"}); err == nil {
		t.Error("bad fsync mode accepted")
	}
	if _, err := ParseFsyncMode("nope"); err == nil {
		t.Error("ParseFsyncMode accepted garbage")
	}
	if mode, err := ParseFsyncMode(""); err != nil || mode != FsyncBatch {
		t.Errorf("ParseFsyncMode(\"\") = %v, %v", mode, err)
	}
}

func TestUnknownRecordKindRejected(t *testing.T) {
	dir := t.TempDir()
	wal := `{"kind":"begin","gen":1}` + "\n" +
		`{"kind":"refund","tenant":"acme"}` + "\n" +
		`{"kind":"charge","tenant":"acme","charges":[{"label":"topk","epsilon":1}]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, walName), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil {
		t.Error("unknown mid-file record kind silently accepted")
	}
}

// TestConcurrentAppends exercises the journal hot path under the race
// detector: many goroutines appending while the flusher drains.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Fsync: FsyncOff, FlushInterval: time.Millisecond, CompactEvery: 64})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				l.AppendCharge("acme", []accountant.Charge{{Label: "topk", Epsilon: 0.001}})
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	acme := l2.State().Tenants["acme"]
	if acme.ChargeCount != 1600 {
		t.Errorf("charge count = %d, want 1600", acme.ChargeCount)
	}
	if got := spentOf(acme); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("spent = %v, want 1.6", got)
	}
}

// TestMidFileCorruptionRefused: an unparsable line FOLLOWED by valid records
// is not a crash tear (a crash damages only the tail) — truncating there
// would silently refund every later charge, so Open must refuse instead.
func TestMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	wal := `{"kind":"begin","gen":1}` + "\n" +
		`{"kind":"charge","tenant":"acme","charges":[{"label":"topk","epsilon":1}]}` + "\n" +
		"\x00\x00scribble\n" +
		`{"kind":"charge","tenant":"acme","charges":[{"label":"topk","epsilon":2}]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, walName), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("mid-file corruption silently truncated instead of refusing")
	}
}

// TestStateDirLocked: a second concurrent Open of the same state directory
// must be refused — two processes replaying the same budgets would let every
// tenant double-spend.
func TestStateDirLocked(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	if _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("second Open of a locked state directory succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, testOptions()) // released on close
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendDeltaSeqRoundTrip: per-dataset append sequence numbers survive
// the WAL round trip with arbitrary cross-dataset interleaving, so replay
// can prove each dataset's subsequence is contiguous.
func TestAppendDeltaSeqRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	deltas := []AppendRecord{
		{Name: "a", Seq: 1, Records: [][]int32{{0}}},
		{Name: "b", Seq: 1, Records: [][]int32{{1, 2}}},
		{Name: "a", Seq: 2, Records: [][]int32{{3}}},
		{Name: "b", Seq: 2, Records: [][]int32{{4}}},
		{Name: "a", Seq: 3, Records: [][]int32{{5}}},
	}
	for _, rec := range deltas {
		if err := l.AppendDelta(rec); err != nil {
			t.Fatalf("AppendDelta(%q seq %d): %v", rec.Name, rec.Seq, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	seqs := make(map[string][]uint64)
	got := 0
	for _, ev := range l2.State().Events {
		if ev.Append == nil {
			continue
		}
		want := deltas[got]
		if ev.Append.Name != want.Name || ev.Append.Seq != want.Seq {
			t.Errorf("event %d = %q seq %d, want %q seq %d", got, ev.Append.Name, ev.Append.Seq, want.Name, want.Seq)
		}
		seqs[ev.Append.Name] = append(seqs[ev.Append.Name], ev.Append.Seq)
		got++
	}
	if got != len(deltas) {
		t.Fatalf("replayed %d append events, want %d", got, len(deltas))
	}
	for name, ss := range seqs {
		for i, s := range ss {
			if s != uint64(i)+1 {
				t.Errorf("dataset %q subsequence %v is not contiguous from 1", name, ss)
				break
			}
		}
	}
}

// TestDrainBufShrinksAfterOversizedDrain: one huge drain must not pin its
// peak scratch capacity for the life of the log.
func TestDrainBufShrinksAfterOversizedDrain(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	defer l.Close()
	big := make([][]int32, 1<<17) // ~1.3 MiB of JSON, past the retain cap
	for i := range big {
		big[i] = []int32{int32(i)}
	}
	if err := l.AppendDelta(AppendRecord{Name: "sales", Seq: 1, Records: big}); err != nil {
		t.Fatalf("AppendDelta(big): %v", err)
	}
	l.ioMu.Lock()
	c := cap(l.drainBuf)
	l.ioMu.Unlock()
	if c > maxRetainedDrainBuf {
		t.Errorf("drainBuf cap after oversized drain = %d, want <= %d", c, maxRetainedDrainBuf)
	}
	// A modest drain afterwards keeps its (small) buffer for reuse.
	if err := l.AppendDelta(AppendRecord{Name: "sales", Seq: 2, Records: [][]int32{{1}}}); err != nil {
		t.Fatalf("AppendDelta(small): %v", err)
	}
	l.ioMu.Lock()
	c = cap(l.drainBuf)
	l.ioMu.Unlock()
	if c == 0 || c > maxRetainedDrainBuf {
		t.Errorf("drainBuf cap after small drain = %d, want small and non-zero", c)
	}
}
