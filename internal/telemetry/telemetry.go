// Package telemetry holds the serving-side observability primitives —
// counters, gauges and the Prometheus-text registry that renders them. It is
// deliberately separate from internal/metrics, which implements the paper's
// Section 7 evaluation metrics (MSE, precision, recall): one package is about
// operating the service, the other about measuring mechanism quality.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter safe for concurrent use: the
// dpserver increments counters on its hot path and exposes them in the
// Prometheus text exposition format.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, safe for concurrent use (e.g.
// in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Label is one key="value" pair attached to a counter or gauge series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// CounterSet is a registry of named counter and gauge series that renders
// itself in the Prometheus text exposition format. Series are created on
// first use and retrieved by (name, labels) afterwards, so hot paths can
// cache the returned pointer and pay only an atomic add per event.
type CounterSet struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	names    []string // registration order of fully-qualified series keys
	kinds    map[string]string
	help     map[string]string // keyed by bare metric name
}

// NewCounterSet returns an empty registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		kinds:    make(map[string]string),
		help:     make(map[string]string),
	}
}

// Help registers a HELP string for the given bare metric name, emitted once
// above the metric's series in WritePrometheus.
func (s *CounterSet) Help(name, help string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.help[name] = help
}

// Counter returns the counter series with the given name and labels, creating
// it at zero on first use.
func (s *CounterSet) Counter(name string, labels ...Label) *Counter {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[key]; ok {
		return c
	}
	c := &Counter{}
	s.counters[key] = c
	s.names = append(s.names, key)
	s.kinds[key] = "counter"
	return c
}

// Gauge returns the gauge series with the given name and labels, creating it
// at zero on first use.
func (s *CounterSet) Gauge(name string, labels ...Label) *Gauge {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.gauges[key]; ok {
		return g
	}
	g := &Gauge{}
	s.gauges[key] = g
	s.names = append(s.names, key)
	s.kinds[key] = "gauge"
	return g
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format, grouped by metric name with TYPE (and optional HELP)
// headers, in a deterministic order.
func (s *CounterSet) WritePrometheus(w io.Writer) error {
	s.mu.Lock()
	keys := append([]string(nil), s.names...)
	kinds := make(map[string]string, len(keys))
	values := make(map[string]string, len(keys))
	for _, k := range keys {
		kinds[k] = s.kinds[k]
		if c, ok := s.counters[k]; ok {
			values[k] = fmt.Sprintf("%d", c.Value())
		} else if g, ok := s.gauges[k]; ok {
			values[k] = fmt.Sprintf("%d", g.Value())
		}
	}
	help := make(map[string]string, len(s.help))
	for k, v := range s.help {
		help[k] = v
	}
	s.mu.Unlock()

	sort.Strings(keys)
	headered := make(map[string]bool)
	for _, k := range keys {
		name := bareName(k)
		if !headered[name] {
			headered[name] = true
			if h, ok := help[name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kinds[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", k, values[k]); err != nil {
			return err
		}
	}
	return nil
}

// seriesKey renders name{k1="v1",k2="v2"} with labels sorted by key so the
// same logical series always maps to the same map entry.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func bareName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}
