package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

var testAnswers = []float64{812, 641, 633, 601, 425, 124, 77, 8}

// goldenRequests holds one canonical request body per registered mechanism.
// The golden test fails if a mechanism is registered without an entry here,
// so every future mechanism must prove its request/response JSON round-trips.
var goldenRequests = map[string]string{
	"topk":          `{"tenant":"acme","epsilon":1,"answers":[812,641,633,601,425,124,77,8],"monotonic":true,"k":3}`,
	"max":           `{"tenant":"acme","epsilon":0.5,"answers":[812,641,633,601,425,124,77,8],"monotonic":true}`,
	"svt":           `{"tenant":"acme","epsilon":2,"answers":[812,641,633,601,425,124,77,8],"monotonic":true,"k":2,"threshold":500,"adaptive":true}`,
	"pipeline/topk": `{"tenant":"acme","epsilon":2,"answers":[812,641,633,601,425,124,77,8],"monotonic":true,"k":3,"select_fraction":0.5}`,
	"pipeline/svt":  `{"tenant":"acme","epsilon":2,"answers":[812,641,633,601,425,124,77,8],"monotonic":true,"k":2,"threshold":500,"adaptive":true,"confidence":0.9}`,
}

// decodeStrict mirrors the serving layer's strict JSON decoding.
func decodeStrict(t *testing.T, data string, dst any) error {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// TestGoldenRequestResponseRoundTrip is the registry golden test: every
// registered mechanism must decode its canonical request, re-encode it to
// the same bytes, execute, and produce a response that survives an
// encode/decode round trip unchanged.
func TestGoldenRequestResponseRoundTrip(t *testing.T) {
	reg := DefaultRegistry()
	names := reg.Names()
	if len(names) != len(goldenRequests) {
		t.Fatalf("registry has %d mechanisms %v but %d golden requests — add a golden entry for every mechanism",
			len(names), names, len(goldenRequests))
	}
	for _, name := range names {
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			golden, ok := goldenRequests[name]
			if !ok {
				t.Fatalf("no golden request for registered mechanism %q", name)
			}
			mech, err := reg.Get(name)
			if err != nil {
				t.Fatalf("Get(%q): %v", name, err)
			}
			if mech.Name() != name {
				t.Fatalf("mechanism registered as %q names itself %q", name, mech.Name())
			}

			// Request JSON → struct → JSON must be the identity.
			req := mech.NewRequest()
			if err := decodeStrict(t, golden, req); err != nil {
				t.Fatalf("decoding golden request: %v", err)
			}
			re, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("re-encoding request: %v", err)
			}
			var buf bytes.Buffer
			if err := json.Compact(&buf, []byte(golden)); err != nil {
				t.Fatal(err)
			}
			if got, want := string(re), buf.String(); got != want {
				t.Errorf("request did not round-trip:\n got %s\nwant %s", got, want)
			}

			if err := mech.Validate(req, Limits{}); err != nil {
				t.Fatalf("golden request failed validation: %v", err)
			}
			if cost := mech.Cost(req); cost != req.Base().Epsilon {
				t.Errorf("Cost = %v, want the request epsilon %v", cost, req.Base().Epsilon)
			}

			// Execute and round-trip the response through JSON into a fresh
			// instance of the same concrete type.
			resp, err := mech.Execute(rng.NewXoshiro(42), req, nil)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			resp.SetBilling(req.Base().Tenant, mech.Cost(req), 1.25)
			data, err := json.Marshal(resp)
			if err != nil {
				t.Fatalf("encoding response: %v", err)
			}
			fresh := reflect.New(reflect.TypeOf(resp).Elem()).Interface()
			if err := decodeStrict(t, string(data), fresh); err != nil {
				t.Fatalf("decoding response %s: %v", data, err)
			}
			if !reflect.DeepEqual(resp, fresh) {
				t.Errorf("response did not round-trip:\nexecuted %#v\ndecoded  %#v", resp, fresh)
			}
		})
	}
}

func TestDeterministicExecution(t *testing.T) {
	reg := DefaultRegistry()
	for name, golden := range goldenRequests {
		mech, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() string {
			req := mech.NewRequest()
			if err := decodeStrict(t, golden, req); err != nil {
				t.Fatal(err)
			}
			resp, err := mech.Execute(rng.NewXoshiro(7), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := json.Marshal(resp)
			return string(data)
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: same seed produced different responses:\n%s\n%s", name, a, b)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	reg := DefaultRegistry()
	cases := []struct {
		name string
		mech string
		body string
	}{
		{"empty tenant", "topk", `{"tenant":"","epsilon":1,"answers":[1,2,3],"k":1}`},
		{"oversized tenant", "max", `{"tenant":"` + strings.Repeat("x", MaxTenantNameLen+1) + `","epsilon":1,"answers":[1,2,3]}`},
		{"zero epsilon", "topk", `{"tenant":"t","epsilon":0,"answers":[1,2,3],"k":1}`},
		{"below-minimum epsilon", "max", `{"tenant":"t","epsilon":1e-12,"answers":[1,2,3]}`},
		{"empty answers", "topk", `{"tenant":"t","epsilon":1,"answers":[],"k":1}`},
		{"k zero", "topk", `{"tenant":"t","epsilon":1,"answers":[1,2,3],"k":0}`},
		{"k too large", "topk", `{"tenant":"t","epsilon":1,"answers":[1,2,3],"k":3}`},
		{"one answer for max", "max", `{"tenant":"t","epsilon":1,"answers":[1]}`},
		{"svt k zero", "svt", `{"tenant":"t","epsilon":1,"answers":[1,2,3],"k":0,"threshold":1}`},
		{"pipeline k too large", "pipeline/topk", `{"tenant":"t","epsilon":1,"answers":[1,2,3],"k":3}`},
		{"bad select fraction", "pipeline/topk", `{"tenant":"t","epsilon":1,"answers":[1,2,3],"k":1,"select_fraction":1.5}`},
		{"negative select fraction", "pipeline/svt", `{"tenant":"t","epsilon":1,"answers":[1,2,3],"k":1,"threshold":1,"select_fraction":-0.1}`},
		{"bad confidence", "pipeline/svt", `{"tenant":"t","epsilon":1,"answers":[1,2,3],"k":1,"threshold":1,"confidence":2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mech, err := reg.Get(tc.mech)
			if err != nil {
				t.Fatal(err)
			}
			req := mech.NewRequest()
			if err := decodeStrict(t, tc.body, req); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := mech.Validate(req, Limits{}); err == nil {
				t.Errorf("Validate accepted %s", tc.body)
			}
		})
	}

	// Non-finite answers and threshold cannot arrive via JSON but can via
	// direct library use.
	topk, _ := reg.Get("topk")
	if err := topk.Validate(&TopKRequest{
		Common: Common{Tenant: "t", Epsilon: 1, Answers: []float64{1, math.NaN(), 3}}, K: 1,
	}, Limits{}); err == nil {
		t.Error("NaN answer accepted")
	}
	svt, _ := reg.Get("svt")
	if err := svt.Validate(&SVTRequest{
		Common: Common{Tenant: "t", Epsilon: 1, Answers: []float64{1, 2, 3}}, K: 1, Threshold: math.Inf(1),
	}, Limits{}); err == nil {
		t.Error("infinite threshold accepted")
	}

	// The MaxAnswers limit is enforced when set and ignored at zero.
	big := &MaxRequest{Common: Common{Tenant: "t", Epsilon: 1, Answers: testAnswers}}
	mx, _ := reg.Get("max")
	if err := mx.Validate(big, Limits{MaxAnswers: 4}); err == nil {
		t.Error("answers over MaxAnswers accepted")
	}
	if err := mx.Validate(big, Limits{}); err != nil {
		t.Errorf("unlimited Limits rejected a valid request: %v", err)
	}

	// The wrong concrete request type is a dispatch bug, not a panic.
	if err := topk.Validate(big, Limits{}); err == nil {
		t.Error("topk accepted a MaxRequest")
	}
	if _, err := topk.Execute(rng.NewXoshiro(1), big, nil); err == nil {
		t.Error("topk executed a MaxRequest")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(topkMechanism{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register(topkMechanism{}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Error("unknown mechanism resolved")
	}
	m, err := reg.Get("topk")
	if err != nil || m.Name() != "topk" {
		t.Errorf("Get(topk) = %v, %v", m, err)
	}

	want := []string{"max", "pipeline/svt", "pipeline/topk", "svt", "topk"}
	if got := DefaultRegistry().Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("DefaultRegistry().Names() = %v, want %v", got, want)
	}
	mechs := DefaultRegistry().Mechanisms()
	for i, mech := range mechs {
		if mech.Name() != want[i] {
			t.Errorf("Mechanisms()[%d] = %q, want %q", i, mech.Name(), want[i])
		}
	}
}

// namedMechanism wraps a mechanism to test name validation at registration.
type namedMechanism struct {
	Mechanism
	name string
}

func (m namedMechanism) Name() string { return m.name }

func TestRegisterRejectsUnroutableNames(t *testing.T) {
	for _, name := range []string{
		"",
		"Top K",  // space breaks the ServeMux pattern
		"topk/",  // empty trailing segment
		"/topk",  // empty leading segment
		"a//b",   // empty middle segment
		"top{k}", // ServeMux wildcard metacharacters
		"TOPK",   // uppercase
		strings.Repeat("x", maxMechanismNameLen+1),
	} {
		reg := NewRegistry()
		if err := reg.Register(namedMechanism{topkMechanism{}, name}); err == nil {
			t.Errorf("Register accepted unroutable name %q", name)
		}
	}
	reg := NewRegistry()
	if err := reg.Register(namedMechanism{topkMechanism{}, "my-org.v2/top_k"}); err != nil {
		t.Errorf("Register rejected a routable name: %v", err)
	}
}

// TestPipelineResponsesCarryTheProtocolOutputs pins the pipeline mechanisms
// to the paper's workflows: refined estimates, error ratios, lower bounds.
func TestPipelineResponsesCarryTheProtocolOutputs(t *testing.T) {
	reg := DefaultRegistry()

	topk, _ := reg.Get("pipeline/topk")
	req := &PipelineTopKRequest{
		Common: Common{Tenant: "t", Epsilon: 10, Answers: testAnswers, Monotonic: true}, K: 3,
	}
	if err := topk.Validate(req, Limits{}); err != nil {
		t.Fatal(err)
	}
	resp, err := topk.Execute(rng.NewXoshiro(3), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := resp.(*PipelineTopKResponse)
	if len(tr.Estimates) != 3 {
		t.Fatalf("got %d estimates, want 3", len(tr.Estimates))
	}
	if !(tr.TheoreticalErrorRatio > 0 && tr.TheoreticalErrorRatio < 1) {
		t.Errorf("error ratio %v not in (0, 1)", tr.TheoreticalErrorRatio)
	}
	if !(tr.MeasurementVariance > 0) {
		t.Errorf("measurement variance %v not positive", tr.MeasurementVariance)
	}

	svt, _ := reg.Get("pipeline/svt")
	sreq := &PipelineSVTRequest{
		Common: Common{Tenant: "t", Epsilon: 10, Answers: testAnswers, Monotonic: true},
		K:      2, Threshold: 500, Adaptive: true,
	}
	if err := svt.Validate(sreq, Limits{}); err != nil {
		t.Fatal(err)
	}
	resp, err = svt.Execute(rng.NewXoshiro(3), sreq, nil)
	if err != nil {
		t.Fatal(err)
	}
	sr := resp.(*PipelineSVTResponse)
	if sr.AboveCount != len(sr.Estimates) {
		t.Errorf("above_count %d != %d estimates", sr.AboveCount, len(sr.Estimates))
	}
	for _, est := range sr.Estimates {
		if est.LowerBound >= est.GapEstimate {
			t.Errorf("lower bound %v not below the gap estimate %v", est.LowerBound, est.GapEstimate)
		}
		if !(est.CombinedVariance > 0) {
			t.Errorf("combined variance %v not positive", est.CombinedVariance)
		}
	}
	if !(sr.MechanismSpent > 0 && sr.MechanismSpent <= sreq.Epsilon+1e-9) {
		t.Errorf("mechanism spent %v outside (0, ε]", sr.MechanismSpent)
	}
}
