package engine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// fakeResolver resolves every dataset named "known" to fixed counts.
type fakeResolver struct {
	calls int
}

func (r *fakeResolver) Resolve(dataset string, spec *QuerySpec) ([]float64, bool, error) {
	r.calls++
	if dataset != "known" {
		return nil, false, fmt.Errorf("unknown dataset %q", dataset)
	}
	switch spec.Kind {
	case QueryAllItems:
		return []float64{5, 4, 3, 2, 1}, true, nil
	case QueryItemCount:
		out := make([]float64, len(spec.Items))
		for i, it := range spec.Items {
			out[i] = float64(it) * 10
		}
		return out, true, nil
	default:
		return nil, false, fmt.Errorf("%w: kind %q", ErrBadQuerySpec, spec.Kind)
	}
}

func TestResolveRequestInlinePassthrough(t *testing.T) {
	req := &TopKRequest{Common: Common{Tenant: "t", Epsilon: 1, Answers: []float64{1, 2, 3}}, K: 1}
	// Inline requests must not need a resolver at all (the CLIs pass nil).
	if err := ResolveRequest(req, nil); err != nil {
		t.Fatalf("ResolveRequest: %v", err)
	}
	if !reflect.DeepEqual(req.Answers, []float64{1, 2, 3}) {
		t.Errorf("answers mutated: %v", req.Answers)
	}
}

func TestResolveRequestAllItems(t *testing.T) {
	r := &fakeResolver{}
	req := &TopKRequest{Common: Common{Tenant: "t", Epsilon: 1, Dataset: "known", Queries: &QuerySpec{Kind: QueryAllItems}}, K: 2}
	if err := ResolveRequest(req, r); err != nil {
		t.Fatalf("ResolveRequest: %v", err)
	}
	if !reflect.DeepEqual(req.Answers, []float64{5, 4, 3, 2, 1}) {
		t.Errorf("answers = %v", req.Answers)
	}
	if !req.Monotonic {
		t.Error("resolved counting queries should set monotonic")
	}
	if r.calls != 1 {
		t.Errorf("resolver calls = %d, want 1", r.calls)
	}
}

func TestResolveRequestItemCount(t *testing.T) {
	req := &SVTRequest{Common: Common{Tenant: "t", Epsilon: 1, Dataset: "known",
		Queries: &QuerySpec{Kind: QueryItemCount, Items: []int32{3, 1}}}, K: 1, Threshold: 5}
	if err := ResolveRequest(req, &fakeResolver{}); err != nil {
		t.Fatalf("ResolveRequest: %v", err)
	}
	if !reflect.DeepEqual(req.Answers, []float64{30, 10}) {
		t.Errorf("answers = %v", req.Answers)
	}
}

func TestResolveRequestErrors(t *testing.T) {
	r := &fakeResolver{}
	cases := []struct {
		name string
		c    Common
		res  Resolver
	}{
		{"queries without dataset", Common{Queries: &QuerySpec{Kind: QueryAllItems}}, r},
		{"dataset without queries", Common{Dataset: "known"}, r},
		{"inline answers plus dataset", Common{Dataset: "known", Queries: &QuerySpec{Kind: QueryAllItems}, Answers: []float64{1}}, r},
		{"nil resolver", Common{Dataset: "known", Queries: &QuerySpec{Kind: QueryAllItems}}, nil},
		{"unknown kind", Common{Dataset: "known", Queries: &QuerySpec{Kind: "nope"}}, r},
		{"all_items with items", Common{Dataset: "known", Queries: &QuerySpec{Kind: QueryAllItems, Items: []int32{1}}}, r},
		{"item_count without items", Common{Dataset: "known", Queries: &QuerySpec{Kind: QueryItemCount}}, r},
	}
	for _, tc := range cases {
		req := &MaxRequest{Common: tc.c}
		err := ResolveRequest(req, tc.res)
		if !errors.Is(err, ErrBadQuerySpec) {
			t.Errorf("%s: err = %v, want ErrBadQuerySpec", tc.name, err)
		}
	}
	// Resolver errors pass through unwrapped for the caller to classify.
	req := &MaxRequest{Common: Common{Dataset: "nope", Queries: &QuerySpec{Kind: QueryAllItems}}}
	if err := ResolveRequest(req, r); err == nil || errors.Is(err, ErrBadQuerySpec) {
		t.Errorf("resolver error = %v, want a non-spec error", err)
	}
}

func TestResolveRequestKeepsExplicitMonotonic(t *testing.T) {
	// A resolver reporting non-monotonic answers must not clear a request's
	// explicit monotonic flag.
	req := &MaxRequest{Common: Common{Monotonic: true, Dataset: "known", Queries: &QuerySpec{Kind: QueryAllItems}}}
	if err := ResolveRequest(req, &fakeResolver{}); err != nil {
		t.Fatal(err)
	}
	if !req.Monotonic {
		t.Error("explicit monotonic flag cleared")
	}
}
