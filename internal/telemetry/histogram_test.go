package telemetry

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},
		{time.Second, 20},
		{8 * time.Second, 23},
		{9 * time.Second, numHistBuckets},
		{time.Hour, numHistBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket bound must map to its own bucket (le is inclusive).
	for i := 0; i < numHistBuckets; i++ {
		d := time.Duration(uint64(1)<<i) * time.Microsecond
		if got := bucketIndex(d); got != i {
			t.Errorf("bucketIndex(%v) = %d, want %d (own bound)", d, got, i)
		}
	}
}

// TestHistogramConcurrentStress hammers one histogram from many goroutines
// under -race and then checks the cell-summed totals are EXACT against the
// serially computed reference — striping must lose or double-count nothing.
func TestHistogramConcurrentStress(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
	)
	h := NewHistogram()
	ref := NewHistogram() // serial reference, filled after the fact

	obs := func(g, i int) time.Duration {
		// Deterministic spread over several buckets, including +Inf.
		return time.Duration((g*perG+i)%9_000_000) * 3 * time.Microsecond
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(obs(g, i))
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			ref.Observe(obs(g, i))
		}
	}

	gotCum, gotSum, gotCount := h.Snapshot()
	wantCum, wantSum, wantCount := ref.Snapshot()
	if gotCount != wantCount || gotCount != goroutines*perG {
		t.Fatalf("count = %d, want %d", gotCount, wantCount)
	}
	if gotSum != wantSum {
		t.Fatalf("sum = %v, want %v", gotSum, wantSum)
	}
	if gotCum != wantCum {
		t.Fatalf("cumulative buckets = %v, want %v", gotCum, wantCum)
	}
	if gotCum[numHistBuckets] != gotCount {
		t.Fatalf("+Inf bucket %d != count %d", gotCum[numHistBuckets], gotCount)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * 100 * time.Microsecond) // 0.1ms .. 10ms
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles not ordered: p50=%v p99=%v", p50, p99)
	}
	// p50 of 0.1..10ms is ~5ms; the covering bucket bound is 8.192ms.
	if p50 > 0.009 {
		t.Fatalf("p50 = %v, want <= 8.192ms bucket bound", p50)
	}
}

// TestWritePrometheusHistogram checks the rendered exposition block: TYPE
// header, cumulative non-decreasing buckets with the le label spliced into
// existing labels, a trailing +Inf equal to _count, and _sum in seconds.
func TestWritePrometheusHistogram(t *testing.T) {
	set := NewCounterSet()
	set.Help("req_seconds", "request latency.")
	h := set.Histogram("req_seconds", L("mechanism", "topk"))
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Millisecond)
	set.FloatGauge("remaining", L("tenant", "acme")).Set(2.5)

	var b strings.Builder
	if err := set.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_seconds request latency.\n",
		"# TYPE req_seconds histogram\n",
		`req_seconds_bucket{mechanism="topk",le="+Inf"} 2`,
		`req_seconds_count{mechanism="topk"} 2`,
		`req_seconds_sum{mechanism="topk"} 0.100003`,
		"# TYPE remaining gauge\n",
		`remaining{tenant="acme"} 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Bucket counts must be cumulative (non-decreasing in le order) and the
	// whole output must be parseable line by line.
	var last uint64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if strings.HasPrefix(line, "req_seconds_bucket{") {
			var n uint64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if n < last {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			last = n
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparsable value in line %q: %v", line, err)
		}
	}
}
