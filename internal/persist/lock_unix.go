//go:build unix

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/lock, refusing to share
// a state directory between processes: two servers replaying the same WAL
// would each hand every tenant its full remaining budget (double-spend) and
// their interleaved appends and compactions would corrupt the log. The lock
// is released by closing the returned file — including implicitly when the
// process dies, so a crash never leaves a stale lock behind.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/lock", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: state directory %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
