package server

// Per-request trace context. Every API request is wrapped in a traceWriter:
// a pooled http.ResponseWriter decorator that carries the request id (echoed
// on every response, success or error, as X-Request-ID), accumulates
// monotonic per-stage timings as the pipeline marks its progress, and
// captures the response status and byte count for the access log. The
// wrapper is recycled through a sync.Pool and stage marks are plain
// time.Now() subtractions, so tracing adds no per-request heap allocation
// beyond the id string itself.
//
// Stage attribution is contiguous: mark(st) charges the time since the
// previous mark to st and advances the cursor, so the per-stage durations
// always sum exactly to the span between the first and last mark. That is
// what lets ?trace=1 report a breakdown whose stages add up to the total
// instead of an approximation with gaps.

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stages, in execution order. Stage timings are reported in the
// access log, the freegap_stage_seconds histograms and ?trace=1 payloads.
type stage int

const (
	stageDecode stage = iota
	stageResolve
	stageValidate
	stageCharge
	stageExecute
	stageEncode
	numStages
)

// stageNames are the stage label values, indexed by stage.
var stageNames = [numStages]string{"decode", "resolve", "validate", "charge", "execute", "encode"}

// requestIDHeader is the header a client may supply a request id in; the
// server echoes it (or a generated id) on every response.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen caps client-supplied request ids; longer (or non-token)
// values are replaced by a generated id rather than echoed back verbatim.
const maxRequestIDLen = 64

// reqIDBase is a per-process random offset so ids from different server
// runs do not collide on the first requests; reqIDSeq is the per-process
// request sequence the id is derived from.
var (
	reqIDBase = func() uint64 {
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err != nil {
			return 0x9e3779b97f4a7c15
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	reqIDSeq atomic.Uint64
)

// newRequestID returns a fresh 16-hex-character request id. One multiply
// and one hex encoding: cheap enough for the hot path, unique within a
// process, and randomized across processes by reqIDBase.
func newRequestID() string {
	n := reqIDBase + reqIDSeq.Add(1)
	n *= 0x9e3779b97f4a7c15
	var raw [8]byte
	binary.BigEndian.PutUint64(raw[:], n)
	var out [16]byte
	hex.Encode(out[:], raw[:])
	return string(out[:])
}

// validRequestID reports whether a client-supplied request id is safe to
// echo: bounded length, printable token characters only (no header or log
// injection).
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// traceWriter is the per-request trace context: an http.ResponseWriter that
// records the request id, response status and size, and the pipeline's
// per-stage timings. Instances are recycled through traceWriterPool.
type traceWriter struct {
	http.ResponseWriter
	reqID   string
	status  int
	bytes   int
	start   time.Time
	last    time.Time
	stages  [numStages]time.Duration
	traceOn bool
	// Access-log fields, filled by the pipeline as it learns them.
	tenant  string
	dataset string
	eps     float64
}

var traceWriterPool = sync.Pool{New: func() any { return new(traceWriter) }}

// beginTrace wraps w in a pooled trace context for one request: it adopts a
// valid client-supplied X-Request-ID (or generates one), stamps the id on
// the response headers so even error responses echo it, and starts the
// stage clock. Release the wrapper with finishTrace.
func (s *Server) beginTrace(w http.ResponseWriter, r *http.Request) *traceWriter {
	t := traceWriterPool.Get().(*traceWriter)
	*t = traceWriter{ResponseWriter: w}
	if id := r.Header.Get(requestIDHeader); validRequestID(id) {
		t.reqID = id
	} else {
		t.reqID = newRequestID()
	}
	w.Header().Set(requestIDHeader, t.reqID)
	// Parsing the query costs an allocation, so only look when one is
	// present at all — the hot path has no query string.
	if r.URL.RawQuery != "" {
		t.traceOn = r.URL.Query().Get("trace") == "1"
	}
	t.start = time.Now()
	t.last = t.start
	return t
}

// mark charges the time since the previous mark to st and advances the
// cursor. Stages may be marked more than once (or never); the invariant is
// only that the stage sums cover last−start exactly.
func (t *traceWriter) mark(st stage) {
	now := time.Now()
	t.stages[st] += now.Sub(t.last)
	t.last = now
}

func (t *traceWriter) Write(p []byte) (int, error) {
	if t.status == 0 {
		t.status = http.StatusOK
	}
	n, err := t.ResponseWriter.Write(p)
	t.bytes += n
	return n, err
}

func (t *traceWriter) WriteHeader(code int) {
	if t.status == 0 {
		t.status = code
	}
	t.ResponseWriter.WriteHeader(code)
}

// StageJSON is one pipeline stage in a ?trace=1 breakdown. Durations are
// microseconds with sub-microsecond precision; StartMicros offsets are
// cumulative, so spans are contiguous and monotone.
type StageJSON struct {
	// Name is the stage name: decode, resolve, validate, charge, execute,
	// encode.
	Name string `json:"name"`
	// StartMicros is the stage's start offset from the request start.
	StartMicros float64 `json:"start_us"`
	// Micros is the stage's duration.
	Micros float64 `json:"us"`
}

// TraceJSON is the inline span breakdown returned when a request opts in
// with ?trace=1. The stage durations sum exactly to TotalMicros.
type TraceJSON struct {
	// RequestID is the id echoed in the X-Request-ID response header.
	RequestID string `json:"request_id"`
	// TotalMicros is the traced wall time from first byte decoded to
	// response encoded.
	TotalMicros float64 `json:"total_us"`
	// Stages lists every pipeline stage in execution order.
	Stages []StageJSON `json:"stages"`
}

// traceJSON renders the accumulated stage timings. Total is last−start —
// the exact span the stage durations partition — not time.Now(), so the
// payload is internally consistent no matter when it is rendered.
func (t *traceWriter) traceJSON() *TraceJSON {
	tr := &TraceJSON{
		RequestID:   t.reqID,
		TotalMicros: micros(t.last.Sub(t.start)),
		Stages:      make([]StageJSON, numStages),
	}
	var offset time.Duration
	for st, d := range t.stages {
		tr.Stages[st] = StageJSON{
			Name:        stageNames[st],
			StartMicros: micros(offset),
			Micros:      micros(d),
		}
		offset += d
	}
	return tr
}

// micros converts a duration to float microseconds without losing the
// nanosecond precision to integer truncation.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// finishTrace observes the request's latency histograms, emits the access
// log record (always when an access logger is configured, otherwise only
// past the slow-request threshold), and recycles the trace context. label
// is the endpoint's metrics label (mechanism name, "batch", "datasets", …),
// outcome the request counter code.
func (s *Server) finishTrace(t *traceWriter, label, outcome string) {
	total := time.Since(t.start)
	if h, ok := s.hot.latency[label]; ok {
		h.Observe(total)
	}
	for st, d := range t.stages {
		if d > 0 {
			s.hot.stages[st].Observe(d)
		}
	}
	slow := s.slowThreshold > 0 && total >= s.slowThreshold
	if s.accessLog != nil || slow {
		s.logRequest(t, label, outcome, total, slow)
	}
	t.ResponseWriter = nil
	traceWriterPool.Put(t)
}
