package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/freegap/freegap/internal/rng"
)

// Common validation errors shared by the mechanisms in this package.
var (
	ErrNoQueries      = errors.New("core: no queries")
	ErrInvalidK       = errors.New("core: k must be positive and at most the number of queries")
	ErrInvalidEpsilon = errors.New("core: epsilon must be positive")
)

// TopKWithGap is the Noisy-Top-K-with-Gap mechanism (Algorithm 1).
//
// Given n sensitivity-1 queries it adds Laplace(2k/ε) noise to every answer
// (Laplace(k/ε) when the query list is monotonic, Definition 7) and returns
// the indices of the k largest noisy answers in descending order together
// with, for each of them, the noisy gap to the next-best noisy answer. By
// Theorem 2 the whole output — indices and gaps — satisfies ε-differential
// privacy (ε/2 would suffice for monotonic queries with the general scale;
// equivalently, the monotonic scale k/ε spends exactly ε).
type TopKWithGap struct {
	// K is the number of queries to select.
	K int
	// Epsilon is the privacy budget consumed by one Run.
	Epsilon float64
	// Monotonic declares that the query list is monotonic (e.g. counting
	// queries), which halves the required noise scale.
	Monotonic bool
	// Noise selects the noise distribution; the zero value is Laplace.
	Noise NoiseKind
	// DiscreteBase is the granularity γ for NoiseDiscreteLaplace; zero means
	// machine-epsilon granularity.
	DiscreteBase float64
}

// NewTopKWithGap returns a Laplace-noise mechanism with the given parameters.
func NewTopKWithGap(k int, epsilon float64, monotonic bool) (*TopKWithGap, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidK, k)
	}
	if !(epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidEpsilon, epsilon)
	}
	return &TopKWithGap{K: k, Epsilon: epsilon, Monotonic: monotonic}, nil
}

// NoiseScale returns the per-query noise scale: 2k/ε, or k/ε when the query
// list is monotonic.
func (m *TopKWithGap) NoiseScale() float64 {
	if m.Monotonic {
		return float64(m.K) / m.Epsilon
	}
	return 2 * float64(m.K) / m.Epsilon
}

// GapVariance returns the variance of each released adjacent gap
// gᵢ = q̃ⱼᵢ − q̃ⱼᵢ₊₁, namely twice the per-query noise variance
// (16k²/ε² in general, 4k²/ε² for monotonic lists). The post-processing
// estimators in internal/postprocess consume this value.
func (m *TopKWithGap) GapVariance() float64 {
	return 2 * rng.LaplaceVariance(m.NoiseScale())
}

// PerQueryNoiseVariance returns the variance of the noise added to a single
// query (2·scale²), the Var(ηᵢ) of Theorem 3.
func (m *TopKWithGap) PerQueryNoiseVariance() float64 {
	return rng.LaplaceVariance(m.NoiseScale())
}

// Selection is one selected query: its index in the input and the noisy gap
// separating it from the next-best noisy query.
type Selection struct {
	// Index is the position of the selected query in the input slice.
	Index int
	// Gap is the noisy difference between this query's noisy value and the
	// noisy value of the next-ranked query (the (i+1)-th largest). It is
	// always strictly positive.
	Gap float64
}

// TopKResult is the output of one Noisy-Top-K-with-Gap run.
type TopKResult struct {
	// Selections lists the k selected queries in descending noisy order; the
	// i-th entry's Gap is the gap between the i-th and (i+1)-th largest noisy
	// queries.
	Selections []Selection
	// Epsilon is the privacy budget this run consumed.
	Epsilon float64
	// Monotonic records whether the monotonic noise scale was used.
	Monotonic bool
	// noiseScale is retained for the estimators.
	noiseScale float64
}

// Indices returns the selected indices in descending noisy order.
func (r *TopKResult) Indices() []int {
	out := make([]int, len(r.Selections))
	for i, s := range r.Selections {
		out[i] = s.Index
	}
	return out
}

// Gaps returns the adjacent gaps g₁, …, g_k in order.
func (r *TopKResult) Gaps() []float64 {
	out := make([]float64, len(r.Selections))
	for i, s := range r.Selections {
		out[i] = s.Gap
	}
	return out
}

// PairwiseGap estimates the gap between the a-th and b-th selected queries
// (0-based ranks, a < b ≤ k): Σ_{i=a}^{b−1} gᵢ, exactly the telescoping sum of
// Section 5.1. Its variance is (b−a+… ) — more precisely 2·noiseVariance,
// independent of how far apart the ranks are, because the intermediate noisy
// values cancel.
func (r *TopKResult) PairwiseGap(a, b int) (float64, error) {
	if a < 0 || b <= a || b > len(r.Selections) {
		return 0, fmt.Errorf("core: invalid rank pair (%d, %d) for %d selections", a, b, len(r.Selections))
	}
	sum := 0.0
	for i := a; i < b; i++ {
		sum += r.Selections[i].Gap
	}
	return sum, nil
}

// GapVariance mirrors TopKWithGap.GapVariance for results whose mechanism is
// no longer at hand.
func (r *TopKResult) GapVariance() float64 {
	return 2 * rng.LaplaceVariance(r.noiseScale)
}

// PerQueryNoiseVariance mirrors TopKWithGap.PerQueryNoiseVariance.
func (r *TopKResult) PerQueryNoiseVariance() float64 {
	return rng.LaplaceVariance(r.noiseScale)
}

// TopKScratch holds the request-scoped buffers one Noisy-Top-K run needs:
// the noisy-score vector, the rank index vector and the selections backing
// array. Serving layers pool TopKScratch values so the hot path performs no
// per-request allocations; the zero value is ready to use and the buffers
// grow amortized to the largest request they have served.
type TopKScratch struct {
	noisy      []float64
	idx        []int
	selections []Selection
}

// floats returns a length-n float buffer backed by the scratch.
func (s *TopKScratch) floats(n int) []float64 {
	if cap(s.noisy) < n {
		s.noisy = make([]float64, n)
	}
	s.noisy = s.noisy[:n]
	return s.noisy
}

// ints returns a length-n int buffer backed by the scratch.
func (s *TopKScratch) ints(n int) []int {
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	s.idx = s.idx[:n]
	return s.idx
}

// sels returns a length-n Selection buffer backed by the scratch.
func (s *TopKScratch) sels(n int) []Selection {
	if cap(s.selections) < n {
		s.selections = make([]Selection, n)
	}
	s.selections = s.selections[:n]
	return s.selections
}

// Run executes the mechanism on the true query answers. It needs k+1 ≤ n
// queries because the k-th gap is measured against the (k+1)-th largest noisy
// answer.
func (m *TopKWithGap) Run(src rng.Source, answers []float64) (*TopKResult, error) {
	return m.RunScratch(src, answers, nil)
}

// RunScratch is Run drawing its working memory from scr (nil allocates
// fresh). The noise vector is filled in one vectorized pass — same draw
// order as scalar sampling, so fixed-seed outputs are unchanged — and the
// result's Selections slice is backed by the scratch: the result must be
// consumed before scr is reused for another run.
func (m *TopKWithGap) RunScratch(src rng.Source, answers []float64, scr *TopKScratch) (*TopKResult, error) {
	n := len(answers)
	if n == 0 {
		return nil, ErrNoQueries
	}
	if m.K <= 0 || m.K >= n {
		return nil, fmt.Errorf("%w: k = %d with %d queries (need k+1 ≤ n)", ErrInvalidK, m.K, n)
	}
	if !(m.Epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidEpsilon, m.Epsilon)
	}
	if scr == nil {
		scr = &TopKScratch{}
	}
	scale := m.NoiseScale()
	nz := noiser{kind: m.Noise, base: m.DiscreteBase}

	// One vectorized noise pass, then one add pass over the (read-only)
	// answers. answers may be a slice shared across requests (the dataset
	// catalog's cached counts), so it is never written.
	noisy := scr.floats(n)
	nz.fill(src, scale, noisy)
	for i, a := range answers {
		noisy[i] += a
	}
	return m.finish(noisy, scr, scale), nil
}

// RunPrenoised is RunScratch with the noise already drawn: unit holds
// len(answers) unit-scale Laplace samples (one per answer, ascending draw
// order) and the mechanism scales them by NoiseScale in place of sampling.
// Because the scalar sampler's final operation is the multiply by scale,
// answers[i] + NoiseScale()*unit[i] is bit-identical to what RunScratch
// computes from the same draws — batch callers fill one shared unit-noise
// vector and carve it into per-request windows without changing any
// fixed-seed output. Only the default Laplace distribution factors this way;
// other noise kinds are rejected.
func (m *TopKWithGap) RunPrenoised(unit, answers []float64, scr *TopKScratch) (*TopKResult, error) {
	n := len(answers)
	if n == 0 {
		return nil, ErrNoQueries
	}
	if m.K <= 0 || m.K >= n {
		return nil, fmt.Errorf("%w: k = %d with %d queries (need k+1 ≤ n)", ErrInvalidK, m.K, n)
	}
	if !(m.Epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidEpsilon, m.Epsilon)
	}
	if m.Noise != NoiseLaplace {
		return nil, fmt.Errorf("core: prenoised execution requires Laplace noise, have %v", m.Noise)
	}
	if len(unit) != n {
		return nil, fmt.Errorf("core: %d unit-noise samples for %d answers", len(unit), n)
	}
	if scr == nil {
		scr = &TopKScratch{}
	}
	scale := m.NoiseScale()
	noisy := scr.floats(n)
	for i, a := range answers {
		noisy[i] = a + scale*unit[i]
	}
	return m.finish(noisy, scr, scale), nil
}

// partialTopCutoff bounds the top-(k+1) size for which the insertion-based
// partial selection replaces the full sort; beyond it the shift cost of the
// ordered window loses to sort's n·log n.
const partialTopCutoff = 64

// finish ranks the k+1 largest noisy answers and materialises the selections
// from the adjacent gaps. Small selections over long vectors take a partial
// insertion pass (one comparison per non-qualifying element instead of a
// full sort); otherwise the index vector is sorted outright. Both paths
// produce the same descending order whenever the noisy values are distinct,
// which continuous noise guarantees almost surely.
func (m *TopKWithGap) finish(noisy []float64, scr *TopKScratch, scale float64) *TopKResult {
	n := len(noisy)
	top := m.K + 1
	var idx []int
	if top <= partialTopCutoff && n >= 4*top {
		// Partial selection: keep idx[:count] as the current top values in
		// descending order, insertion-shifting qualifiers into place. Most
		// elements fail the single threshold comparison against the current
		// minimum and cost nothing else.
		idx = scr.ints(top)
		count := 0
		for i := 0; i < n; i++ {
			v := noisy[i]
			if count == top {
				if v <= noisy[idx[top-1]] {
					continue
				}
				count--
			}
			j := count
			for j > 0 && noisy[idx[j-1]] < v {
				idx[j] = idx[j-1]
				j--
			}
			idx[j] = i
			count++
		}
	} else {
		idx = scr.ints(n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return noisy[idx[a]] > noisy[idx[b]] })
		idx = idx[:top]
	}

	selections := scr.sels(m.K)
	for i := 0; i < m.K; i++ {
		selections[i] = Selection{
			Index: idx[i],
			Gap:   noisy[idx[i]] - noisy[idx[i+1]],
		}
	}
	return &TopKResult{
		Selections: selections,
		Epsilon:    m.Epsilon,
		Monotonic:  m.Monotonic,
		noiseScale: scale,
	}
}

// MaxWithGapResult is the output of the k = 1 special case.
type MaxWithGapResult struct {
	// Index is the index of the approximately largest query.
	Index int
	// Gap is the noisy gap between the largest and second-largest noisy
	// queries (always positive).
	Gap float64
	// Epsilon is the budget consumed.
	Epsilon float64
}

// MaxWithGap runs Noisy-Max-with-Gap: it returns the index of the
// approximately largest query together with the noisy gap to the runner-up,
// at the same ε cost as classic Noisy Max.
func MaxWithGap(src rng.Source, answers []float64, epsilon float64, monotonic bool) (*MaxWithGapResult, error) {
	m, err := NewTopKWithGap(1, epsilon, monotonic)
	if err != nil {
		return nil, err
	}
	res, err := m.Run(src, answers)
	if err != nil {
		return nil, err
	}
	return &MaxWithGapResult{
		Index:   res.Selections[0].Index,
		Gap:     res.Selections[0].Gap,
		Epsilon: epsilon,
	}, nil
}
