package server

// Durable-state glue: rebuilding the dataset catalog from journalled records
// at construction, and journalling new registrations while serving. Budget
// charges need no glue here — the persist log implements ChargeJournal, and
// the tenant registry installs it as a per-accountant hook so a WAL entry is
// written iff the charge committed.

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/store"
)

// arenaDirName is the state-directory subdirectory holding the persisted
// columnar arenas (one .arena file per dataset, see store.WriteArena).
const arenaDirName = "arenas"

// arenaPath resolves a dataset's persisted-arena file, or "" when arena
// persistence is off (no MmapDatasets, or no durable state directory).
func (s *Server) arenaPath(name string) string {
	if !s.cfg.MmapDatasets || s.persist == nil {
		return ""
	}
	return filepath.Join(s.persist.Dir(), arenaDirName, name+".arena")
}

// restoreDataset rebuilds one journalled dataset and registers it into the
// catalog. With MmapDatasets, the dataset's persisted arena is memory-mapped
// back — fingerprinted against the rebuilt transactions, checksummed, and
// discarded for a clean rescan on any mismatch — so a restored dataset skips
// the item-count recount entirely; otherwise the counts are recomputed
// exactly once (the registration precompute). Either way restored datasets
// keep the zero-per-request-rescan property, and restored registrations are
// not re-journalled. A name the caller already catalogued directly in
// Config.Datasets wins over the journalled copy — mirroring the Preload skip
// — so a pre-populated store never makes a restart unstartable.
func (s *Server) restoreDataset(rec persist.DatasetRecord) error {
	if _, err := s.datasets.Get(rec.Name); err == nil {
		return nil
	}
	db, err := s.materializeDataset(rec)
	if err != nil {
		return err
	}
	if path := s.arenaPath(rec.Name); path != "" {
		if a, err := store.LoadArena(path, db.NumRecords(), db.NumItems(), true); err == nil {
			if _, err := s.datasets.RegisterArena(rec.Name, rec.Source, db, a); err != nil {
				a.Close()
				return fmt.Errorf("server: restoring dataset %q: %w", rec.Name, err)
			}
			s.registerDatasetTelemetry(rec.Name)
			return nil
		}
		// Invalid or missing arena: fall through to a clean rescan, and
		// refresh the file from the recount for the next restart.
		defer s.saveArena(rec.Name)
	}
	if _, err := s.datasets.Register(rec.Name, rec.Source, db); err != nil {
		return fmt.Errorf("server: restoring dataset %q: %w", rec.Name, err)
	}
	s.registerDatasetTelemetry(rec.Name)
	return nil
}

// saveArena persists a catalogued dataset's arena for the next restart's
// mmap load. Best-effort: the arena is a restart-time optimisation derived
// entirely from the journalled dataset, so a write failure degrades to a
// rescan on the next start rather than failing the registration.
func (s *Server) saveArena(name string) {
	path := s.arenaPath(name)
	if path == "" {
		return
	}
	e, err := s.datasets.Get(name)
	if err != nil {
		return
	}
	v := e.View() // one generation: the written record count must match the arena
	_ = store.WriteArena(path, v.Dataset().NumRecords(), v.Arena())
}

// removeArenaFile best-effort unlinks a dataset's persisted arena image, for
// rollback paths where the catalog entry (and its path-tracking arena) may
// already be gone.
func (s *Server) removeArenaFile(name string) {
	if path := s.arenaPath(name); path != "" {
		_ = os.Remove(path)
	}
}

// materializeDataset turns a journalled record back into transactions:
// blob-backed records re-read their FIMI file under the catalog limits,
// synthetic records regenerate deterministically from kind/scale/seed.
func (s *Server) materializeDataset(rec persist.DatasetRecord) (*dataset.Transactions, error) {
	lim := s.datasets.Limits()
	switch {
	case rec.File != "":
		db, err := dataset.ReadFIMIFileLimited(s.persist.BlobPath(rec), dataset.FIMILimits{
			MaxRecords: lim.MaxRecords,
			MaxItemID:  int32(lim.MaxItems) - 1,
		})
		if err != nil {
			return nil, fmt.Errorf("server: restoring dataset %q: %w", rec.Name, err)
		}
		// The FIMI text only carries observed ids; restore the declared
		// universe so all_items workloads keep their exact shape.
		return db.WithUniverse(rec.Items), nil
	case rec.Synthetic != nil:
		db, err := store.GenerateSynthetic(rec.Synthetic.Kind, rec.Synthetic.Scale, rec.Synthetic.Seed)
		if err != nil {
			return nil, fmt.Errorf("server: restoring dataset %q: %w", rec.Name, err)
		}
		return db, nil
	default:
		return nil, fmt.Errorf("server: dataset record %q names neither a blob nor a synthetic spec", rec.Name)
	}
}

// journalDataset makes one freshly registered dataset durable. Synthetic
// datasets (syn != nil) are journalled as their generator spec — regeneration
// with the same kind/scale/seed is deterministic and, unlike a FIMI blob,
// preserves the exact item universe (trailing zero-count items have no
// transactions to serialise). Everything else becomes a FIMI blob under the
// state directory, written and synced before the WAL record that references
// it. A nil persist log makes it a no-op.
func (s *Server) journalDataset(entry *store.Entry, syn *persist.SyntheticRecord) error {
	if s.persist == nil {
		return nil
	}
	info := entry.Info()
	rec := persist.DatasetRecord{Name: info.Name, Source: info.Source, Items: info.Items, Synthetic: syn}
	if syn == nil {
		rel, err := s.persist.SaveDatasetBlob(info.Name, entry.Dataset())
		if err != nil {
			return fmt.Errorf("server: persisting dataset %q: %w", info.Name, err)
		}
		rec.File = rel
	}
	if err := s.persist.AppendDataset(rec); err != nil {
		if rec.File != "" {
			// Nothing durable references the blob; reclaim it instead of
			// leaving an orphan in the state directory.
			_ = os.Remove(s.persist.BlobPath(rec))
		}
		return fmt.Errorf("server: journalling dataset %q: %w", info.Name, err)
	}
	return nil
}
