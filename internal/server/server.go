// Package server is the multi-tenant DP query service over the library's
// free-gap mechanisms: a long-lived HTTP/JSON facade that lets many
// concurrent clients run Noisy-Top-K-with-Gap, Noisy-Max-with-Gap and the
// Sparse-Vector-with-Gap variants against per-tenant privacy budgets.
//
// Endpoints:
//
//	POST /v1/topk                  Noisy-Top-K-with-Gap selection
//	POST /v1/max                   Noisy-Max-with-Gap (k = 1 special case)
//	POST /v1/svt                   (Adaptive-)Sparse-Vector-with-Gap
//	GET  /v1/tenants/{id}/budget   a tenant's budget ledger
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//
// Each tenant is provisioned a fresh accountant with the configured initial ε
// budget on first use; every request charges it atomically before the
// mechanism runs, and an exhausted budget yields a structured 402 response
// with code "budget_exhausted". Mechanism executions run on a bounded worker
// pool whose workers each own a private deterministic noise source, keeping
// the hot path allocation-free and, with Workers = 1 and a fixed Seed, fully
// reproducible.
package server

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"github.com/freegap/freegap/internal/metrics"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultTenantBudget is the initial per-tenant ε budget.
	DefaultTenantBudget = 10.0
	// DefaultMaxAnswers bounds the number of query answers per request.
	DefaultMaxAnswers = 1 << 20
	// DefaultMaxBodyBytes bounds the request body size.
	DefaultMaxBodyBytes = 32 << 20
	// DefaultMaxTenants bounds the number of auto-provisioned tenants.
	DefaultMaxTenants = 100_000
	// MinEpsilon is the smallest per-request ε accepted. Below it the noise
	// scale is astronomically useless anyway, and admitting near-zero charges
	// would let one tenant grow its accountant's audit log without bound.
	MinEpsilon = 1e-9
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (e.g. ":8080"). Ignored
	// when the server is mounted via Handler.
	Addr string
	// TenantBudget is the initial ε budget provisioned to each new tenant
	// (default DefaultTenantBudget).
	TenantBudget float64
	// Workers bounds the mechanism worker pool (default GOMAXPROCS).
	Workers int
	// Seed seeds the worker noise sources. Zero draws a fresh seed from
	// crypto/rand; a fixed value makes a Workers = 1 server deterministic,
	// which the tests and benchmarks rely on.
	Seed uint64
	// MaxAnswers bounds the number of answers accepted per request (default
	// DefaultMaxAnswers).
	MaxAnswers int
	// MaxBodyBytes bounds the request body size (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxTenants bounds how many tenants may be auto-provisioned (default
	// DefaultMaxTenants); beyond it, requests from new tenants are rejected
	// so unauthenticated traffic cannot grow the registry without bound.
	MaxTenants int
}

func (c Config) withDefaults() (Config, error) {
	if c.TenantBudget == 0 {
		c.TenantBudget = DefaultTenantBudget
	}
	if !(c.TenantBudget > 0) {
		return c, fmt.Errorf("server: tenant budget %v must be positive", c.TenantBudget)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("server: workers %d must be positive", c.Workers)
	}
	if c.MaxAnswers == 0 {
		c.MaxAnswers = DefaultMaxAnswers
	}
	if c.MaxAnswers < 0 {
		return c, fmt.Errorf("server: max answers %d must be positive", c.MaxAnswers)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxBodyBytes < 0 {
		return c, fmt.Errorf("server: max body bytes %d must be positive", c.MaxBodyBytes)
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = DefaultMaxTenants
	}
	if c.MaxTenants < 0 {
		return c, fmt.Errorf("server: max tenants %d must be positive", c.MaxTenants)
	}
	if c.Seed == 0 {
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err != nil {
			return c, fmt.Errorf("server: seeding noise sources: %w", err)
		}
		c.Seed = binary.LittleEndian.Uint64(b[:])
		if c.Seed == 0 {
			c.Seed = 1
		}
	}
	return c, nil
}

// Server is the multi-tenant DP query service.
type Server struct {
	cfg     Config
	reg     *Registry
	pool    *workerPool
	mux     *http.ServeMux
	metrics *metrics.CounterSet
	hot     hotCounters
	httpSrv *http.Server
	started time.Time
}

// hotCounters holds the metric series touched on every request, resolved
// once at construction so the hot path pays a single atomic add per event
// instead of a mutex-guarded registry lookup (counters.go documents cached
// pointers as the intended hot-path usage).
type hotCounters struct {
	inFlight  *metrics.Gauge
	requests  map[string]map[string]*metrics.Counter // mechanism → outcome code
	exhausted map[string]*metrics.Counter            // mechanism
}

func newHotCounters(set *metrics.CounterSet) hotCounters {
	mechanisms := []string{mechTopK, mechSVT, mechMax, "unknown"}
	outcomes := []string{"ok", CodeInvalidRequest, CodeUnknownMechanism, CodeBudgetExhausted,
		CodeTenantLimit, CodeCancelled, CodeRequestTooLarge, CodeUnavailable, CodeInternal}
	hot := hotCounters{
		inFlight:  set.Gauge("freegap_in_flight_requests"),
		requests:  make(map[string]map[string]*metrics.Counter, len(mechanisms)),
		exhausted: make(map[string]*metrics.Counter, len(mechanisms)),
	}
	for _, mech := range mechanisms {
		hot.requests[mech] = make(map[string]*metrics.Counter, len(outcomes))
		for _, code := range outcomes {
			hot.requests[mech][code] = set.Counter("freegap_requests_total",
				metrics.L("mechanism", mech), metrics.L("code", code))
		}
		hot.exhausted[mech] = set.Counter("freegap_budget_exhausted_total", metrics.L("mechanism", mech))
	}
	return hot
}

// New constructs a Server from cfg. The caller owns the server's lifecycle:
// either mount Handler into an existing http.Server, or use
// ListenAndServe/Shutdown; call Close when done to stop the worker pool.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	reg, err := NewRegistry(cfg.TenantBudget, cfg.MaxTenants)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		pool:    newWorkerPool(cfg.Workers, cfg.Seed),
		mux:     http.NewServeMux(),
		metrics: metrics.NewCounterSet(),
		started: time.Now(),
	}
	// Built eagerly so Serve (serving goroutine) and Shutdown (signal
	// goroutine) never race on the field.
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.metrics.Help("freegap_requests_total", "DP query requests by mechanism and outcome code.")
	s.metrics.Help("freegap_budget_exhausted_total", "Requests rejected because the tenant budget was exhausted.")
	s.metrics.Help("freegap_in_flight_requests", "Mechanism requests currently being served.")
	s.hot = newHotCounters(s.metrics)
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/tenants/{id}/budget", s.handleBudget)
	s.mux.HandleFunc("POST /v1/{mechanism}", s.handleMechanism)
}

// Handler returns the server's HTTP handler, for mounting under httptest or a
// caller-owned http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the tenant registry (used by the CLI for startup logging
// and by tests).
func (s *Server) Registry() *Registry { return s.reg }

// Config returns the effective configuration after defaulting.
func (s *Server) Config() Config { return s.cfg }

// Metrics exposes the server's counter registry.
func (s *Server) Metrics() *metrics.CounterSet { return s.metrics }

// ListenAndServe serves on cfg.Addr until Shutdown or a listener error. Like
// http.Server.ListenAndServe it returns http.ErrServerClosed after a clean
// Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on the given listener until Shutdown or a listener error; it
// lets callers bind to ":0" and discover the assigned port themselves.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Shutdown gracefully stops a ListenAndServe/Serve server: it drains
// in-flight HTTP requests (bounded by ctx) and then stops the worker pool.
// Called before Serve, it marks the server closed so Serve returns
// http.ErrServerClosed immediately instead of hanging.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	s.pool.close()
	return err
}

// Close stops the worker pool without touching any HTTP listener. Use it when
// the server was mounted via Handler.
func (s *Server) Close() { s.pool.close() }
