// Package alignment makes the paper's randomness-alignment proof technique
// (Sections 4, 5.1, 6.1 and 8) executable.
//
// A randomness alignment maps the noise vector H that a mechanism used on
// database D into a noise vector H' such that running the mechanism on an
// adjacent database D' with H' reproduces the same output. Differential
// privacy then follows from two checkable facts (Lemma 1): the aligned run
// really does produce the same output, and the "cost" Σ|ηᵢ−η'ᵢ|/αᵢ of moving
// the noise is at most ε.
//
// This package implements, for both of the paper's mechanisms, (a) a shadow
// execution that runs the algorithm on an explicit noise vector, (b) the local
// alignment functions from Equations (2) and (3), and (c) verifiers that
// sample many noise vectors and check both facts numerically on a given
// adjacent pair of query-answer vectors. The verifiers are used by the test
// suite as a mechanised counterpart of Theorems 2 and 4 and are exposed to
// users who want to sanity-check modified mechanism parameters.
//
// Unlike internal/validate (a black-box frequency audit), the checks here are
// white-box: they follow the exact argument of the paper's proofs.
package alignment
