package engine

// Server-side query resolution. A request may, instead of carrying inline
// answers, name a catalogued dataset and a counting-query spec; the executing
// layer resolves the spec into answers exactly once, between decoding and
// validation (decode → resolve → validate → charge → execute), through a
// Resolver it injects. The engine defines only the contract — the serving
// layer backs the Resolver with its dataset store — so mechanisms, the batch
// executor and the CLIs all gain dataset-backed queries without knowing where
// the data lives.

import (
	"errors"
	"fmt"
)

// Query spec kinds accepted in Common.Queries.
const (
	// QueryAllItems asks for the count of every item in the dataset's
	// universe — one sensitivity-1 monotonic counting query per item, the
	// exact workload of the paper's Section 7.
	QueryAllItems = "all_items"
	// QueryItemCount asks for the counts of an explicit item list.
	QueryItemCount = "item_count"
)

// ErrBadQuerySpec reports a malformed dataset/query combination: an unknown
// kind, a missing or superfluous item list, a query spec without a dataset
// (or vice versa), or inline answers alongside a dataset. Callers map it to
// the "bad_query_spec" API error code.
var ErrBadQuerySpec = errors.New("engine: bad query spec")

// QuerySpec names a counting-query workload over a catalogued dataset, in
// place of inline answers.
type QuerySpec struct {
	// Kind selects the workload: QueryAllItems or QueryItemCount.
	Kind string `json:"kind"`
	// Items lists the queried item ids for kind "item_count"; it must be
	// empty for "all_items".
	Items []int32 `json:"items,omitempty"`
}

// Validate rejects malformed specs with ErrBadQuerySpec.
func (q *QuerySpec) Validate() error {
	switch q.Kind {
	case QueryAllItems:
		if len(q.Items) != 0 {
			return fmt.Errorf("%w: items must be empty for kind %q", ErrBadQuerySpec, QueryAllItems)
		}
	case QueryItemCount:
		if len(q.Items) == 0 {
			return fmt.Errorf("%w: kind %q needs a non-empty items list", ErrBadQuerySpec, QueryItemCount)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q (valid: %q, %q)", ErrBadQuerySpec, q.Kind, QueryItemCount, QueryAllItems)
	}
	return nil
}

// Resolver turns (dataset, spec) into query answers. The serving layer
// injects an implementation backed by its dataset catalog; monotonic reports
// whether the resolved queries form a monotonic list (true for counting
// queries), letting the mechanisms use the halved noise scale.
type Resolver interface {
	Resolve(dataset string, spec *QuerySpec) (answers []float64, monotonic bool, err error)
}

// ResolveRequest fills a dataset-backed request's answers in place, through
// r. It is a no-op for requests with inline answers, so the executing layer
// calls it unconditionally between decode and Validate. A request that names
// a dataset must carry a query spec and no inline answers; violations return
// ErrBadQuerySpec, and r's errors (e.g. an unknown dataset) pass through
// unwrapped so callers can classify them.
func ResolveRequest(req Request, r Resolver) error {
	c := req.Base()
	switch {
	case c.Dataset == "" && c.Queries == nil:
		return nil
	case c.Dataset == "":
		return fmt.Errorf("%w: a query spec needs a dataset name", ErrBadQuerySpec)
	case c.Queries == nil:
		return fmt.Errorf("%w: dataset %q given without a query spec", ErrBadQuerySpec, c.Dataset)
	case len(c.Answers) != 0:
		return fmt.Errorf("%w: request carries both inline answers and dataset %q", ErrBadQuerySpec, c.Dataset)
	case r == nil:
		return fmt.Errorf("%w: this caller serves no datasets", ErrBadQuerySpec)
	}
	if err := c.Queries.Validate(); err != nil {
		return err
	}
	answers, monotonic, err := r.Resolve(c.Dataset, c.Queries)
	if err != nil {
		return err
	}
	c.Answers = answers
	// Counting queries are monotonic whether or not the client said so;
	// never downgrade an explicitly monotonic request.
	c.Monotonic = c.Monotonic || monotonic
	return nil
}
