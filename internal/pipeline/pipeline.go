// Package pipeline packages the paper's two end-to-end workflows behind a
// single call each, handling budget splitting, selection, measurement and the
// gap-aware post-processing:
//
//   - TopKPipeline — the Section 5.2 protocol: spend part of the budget on
//     Noisy-Top-K-with-Gap, the rest on Laplace measurements of the selected
//     queries, and refine the measurements with the Theorem 3 BLUE.
//
//   - SVTPipeline — the Section 6.2 protocol: spend part of the budget on
//     (Adaptive-)Sparse-Vector-with-Gap, the rest on Laplace measurements of
//     the reported queries, and combine each measurement with its gap estimate
//     by inverse-variance weighting, attaching a Lemma 5 lower confidence
//     bound.
//
// Both pipelines charge a provided Accountant so that callers embedding them
// in larger analyses keep an accurate picture of the remaining budget.
package pipeline

import (
	"errors"
	"fmt"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/baseline"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/postprocess"
	"github.com/freegap/freegap/internal/rng"
)

// ErrBudget wraps budget-related failures from the accountant.
var ErrBudget = errors.New("pipeline: insufficient privacy budget")

// TopKConfig configures the Section 5.2 select-then-measure pipeline.
type TopKConfig struct {
	// K is the number of queries to select and measure.
	K int
	// Epsilon is the total privacy budget of the pipeline.
	Epsilon float64
	// SelectFraction is the share of Epsilon spent on selection (the paper
	// uses 0.5, the default when zero).
	SelectFraction float64
	// Monotonic declares a monotonic (e.g. counting) query list.
	Monotonic bool
}

func (c TopKConfig) withDefaults() TopKConfig {
	if c.SelectFraction <= 0 || c.SelectFraction >= 1 {
		c.SelectFraction = 0.5
	}
	return c
}

// TopKEstimate is one refined query estimate from the Top-K pipeline.
type TopKEstimate struct {
	// Index is the query's position in the input.
	Index int
	// Measured is the raw Laplace measurement of the query.
	Measured float64
	// Refined is the BLUE estimate that also uses the gap information.
	Refined float64
	// Gap is the released gap between this query and the next-ranked one.
	Gap float64
}

// TopKPipelineResult is the full output of the Top-K pipeline.
type TopKPipelineResult struct {
	Estimates []TopKEstimate
	// MeasurementVariance is the per-query variance of the raw measurements.
	MeasurementVariance float64
	// TheoreticalErrorRatio is the Corollary 1 ratio achieved by the refined
	// estimates relative to the raw measurements.
	TheoreticalErrorRatio float64
	// EpsilonSpent is the total budget consumed.
	EpsilonSpent float64
}

// RunTopK executes the pipeline on the true query answers, charging acct (if
// non-nil) for the selection and measurement stages.
func RunTopK(src rng.Source, answers []float64, cfg TopKConfig, acct *accountant.Accountant) (*TopKPipelineResult, error) {
	cfg = cfg.withDefaults()
	if !(cfg.Epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", core.ErrInvalidEpsilon, cfg.Epsilon)
	}
	selectEps := cfg.Epsilon * cfg.SelectFraction
	measureEps := cfg.Epsilon - selectEps
	if acct != nil && !acct.CanSpend(cfg.Epsilon) {
		return nil, fmt.Errorf("%w: need %v, have %v", ErrBudget, cfg.Epsilon, acct.Remaining())
	}

	topk, err := core.NewTopKWithGap(cfg.K, selectEps, cfg.Monotonic)
	if err != nil {
		return nil, err
	}
	selection, err := topk.Run(src, answers)
	if err != nil {
		return nil, err
	}
	if acct != nil {
		if err := acct.Spend("top-k selection", selectEps); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBudget, err)
		}
	}

	meas, err := baseline.NewLaplaceMechanism(measureEps, 1)
	if err != nil {
		return nil, err
	}
	measurements, err := meas.MeasureSelected(src, answers, selection.Indices())
	if err != nil {
		return nil, err
	}
	if acct != nil {
		if err := acct.Spend("top-k measurements", measureEps); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBudget, err)
		}
	}

	var gaps []float64
	if cfg.K > 1 {
		gaps = selection.Gaps()[:cfg.K-1]
	}
	measVar := meas.MeasurementVariance(cfg.K)
	selVar := selection.PerQueryNoiseVariance()
	refined, err := postprocess.BLUEFromVariances(measurements, gaps, measVar, selVar)
	if err != nil {
		return nil, err
	}

	result := &TopKPipelineResult{
		MeasurementVariance:   measVar,
		TheoreticalErrorRatio: postprocess.ErrorReductionRatio(cfg.K, selVar/measVar),
		EpsilonSpent:          cfg.Epsilon,
	}
	for i, sel := range selection.Selections {
		result.Estimates = append(result.Estimates, TopKEstimate{
			Index:    sel.Index,
			Measured: measurements[i],
			Refined:  refined[i],
			Gap:      sel.Gap,
		})
	}
	return result, nil
}

// SVTConfig configures the Section 6.2 threshold pipeline.
type SVTConfig struct {
	// K is the number of above-threshold answers to provision for.
	K int
	// Epsilon is the total privacy budget of the pipeline.
	Epsilon float64
	// Threshold is the public threshold.
	Threshold float64
	// SelectFraction is the share of Epsilon spent on the Sparse Vector stage
	// (default 0.5).
	SelectFraction float64
	// Adaptive selects Adaptive-Sparse-Vector-with-Gap instead of plain
	// Sparse-Vector-with-Gap.
	Adaptive bool
	// Monotonic declares a monotonic query list.
	Monotonic bool
	// Confidence is the level of the Lemma 5 lower bound attached to each
	// estimate (default 0.95).
	Confidence float64
}

func (c SVTConfig) withDefaults() SVTConfig {
	if c.SelectFraction <= 0 || c.SelectFraction >= 1 {
		c.SelectFraction = 0.5
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	return c
}

// SVTEstimate is one refined above-threshold query estimate.
type SVTEstimate struct {
	// Index is the query's position in the stream.
	Index int
	// Branch records which branch of the adaptive mechanism answered.
	Branch core.Branch
	// GapEstimate is gap + threshold, the selection-stage estimate.
	GapEstimate float64
	// Measured is the raw Laplace measurement.
	Measured float64
	// Combined is the inverse-variance combination of the two.
	Combined float64
	// CombinedVariance is the variance of the combined estimate.
	CombinedVariance float64
	// LowerBound is the Lemma 5 lower confidence bound on the true answer
	// derived from the selection stage alone.
	LowerBound float64
}

// SVTPipelineResult is the full output of the threshold pipeline.
type SVTPipelineResult struct {
	Estimates []SVTEstimate
	// AboveCount is the number of above-threshold answers the selection stage
	// produced.
	AboveCount int
	// EpsilonSpent is the budget actually consumed (the adaptive selection
	// stage may spend less than its allocation).
	EpsilonSpent float64
	// SelectionRemaining is the budget the adaptive selection stage left
	// unspent (zero for the non-adaptive variant).
	SelectionRemaining float64
}

// RunSVT executes the threshold pipeline on the true query answers, charging
// acct (if non-nil) for the selection and measurement stages.
func RunSVT(src rng.Source, answers []float64, cfg SVTConfig, acct *accountant.Accountant) (*SVTPipelineResult, error) {
	cfg = cfg.withDefaults()
	if !(cfg.Epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", core.ErrInvalidEpsilon, cfg.Epsilon)
	}
	selectEps := cfg.Epsilon * cfg.SelectFraction
	measureEps := cfg.Epsilon - selectEps
	if acct != nil && !acct.CanSpend(cfg.Epsilon) {
		return nil, fmt.Errorf("%w: need %v, have %v", ErrBudget, cfg.Epsilon, acct.Remaining())
	}

	adaptive := &core.AdaptiveSVTWithGap{
		K:         cfg.K,
		Epsilon:   selectEps,
		Threshold: cfg.Threshold,
		Monotonic: cfg.Monotonic,
	}
	var (
		selection *core.SVTGapResult
		err       error
	)
	if cfg.Adaptive {
		selection, err = adaptive.Run(src, answers)
	} else {
		var svt *core.SVTWithGap
		svt, err = core.NewSVTWithGap(cfg.K, selectEps, cfg.Threshold, cfg.Monotonic)
		if err == nil {
			selection, err = svt.Run(src, answers)
		}
	}
	if err != nil {
		return nil, err
	}
	if acct != nil {
		if err := acct.Spend("sparse-vector selection", selection.BudgetSpent); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBudget, err)
		}
	}

	gapEstimates, gapVariances, indices := selection.GapEstimates()
	result := &SVTPipelineResult{
		AboveCount:         selection.AboveCount,
		EpsilonSpent:       selection.BudgetSpent,
		SelectionRemaining: selection.Remaining(),
	}
	if len(indices) == 0 {
		return result, nil
	}

	meas, err := baseline.NewLaplaceMechanism(measureEps, 1)
	if err != nil {
		return nil, err
	}
	measurements, err := meas.MeasureSelected(src, answers, indices)
	if err != nil {
		return nil, err
	}
	if acct != nil {
		if err := acct.Spend("sparse-vector measurements", measureEps); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBudget, err)
		}
	}
	result.EpsilonSpent += measureEps
	measVar := meas.MeasurementVariance(len(indices))

	// Lemma 5 rates for the lower bound: threshold noise Laplace(1/ε₀) and
	// branch-dependent query noise.
	eps0, eps1, eps2 := adaptive.Budgets()
	items := selection.AboveItems()
	for i, idx := range indices {
		combined, combinedVar, err := postprocess.CombineByInverseVariance(
			measurements[i], measVar, gapEstimates[i], gapVariances[i])
		if err != nil {
			return nil, err
		}
		branchEps := eps1
		if items[i].Branch == core.BranchTop {
			branchEps = eps2
		}
		if !cfg.Monotonic {
			branchEps /= 2 // query noise scale is 2/ε_branch for general queries
		}
		lower, err := postprocess.GapLowerConfidenceBound(items[i].Gap, cfg.Threshold, cfg.Confidence, eps0, branchEps)
		if err != nil {
			return nil, err
		}
		result.Estimates = append(result.Estimates, SVTEstimate{
			Index:            idx,
			Branch:           items[i].Branch,
			GapEstimate:      gapEstimates[i],
			Measured:         measurements[i],
			Combined:         combined,
			CombinedVariance: combinedVar,
			LowerBound:       lower,
		})
	}
	return result, nil
}
