package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/rng"
	"github.com/freegap/freegap/internal/telemetry"
)

// scratchPool recycles the request-scoped working memory of the whole
// mechanism pipeline — the request body bytes, the decoded request's
// variable-length fields, the mechanisms' noise and score buffers, the
// responses' backing arrays and the encoded output — so the steady-state hot
// path allocates no per-request buffers at all. A scratch is released only
// after the response built from it has been written (both the response value
// and the output bytes alias the scratch).
var scratchPool = sync.Pool{New: func() any { return engine.NewScratch() }}

// putScratch trims oversized buffers (one huge request must not pin its
// buffers in the pool forever) and recycles the scratch.
func putScratch(scr *engine.Scratch) {
	scr.Trim()
	scratchPool.Put(scr)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		Tenants:       s.reg.Len(),
		Workers:       s.cfg.Workers,
		Mechanisms:    s.mechNames,
		Datasets:      s.datasets.Len(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if s.persist != nil {
		resp.WALGeneration = s.persist.Generation()
	}
	// A dead persistence log is a page: the server still answers, but every
	// new charge is no longer journalled and a restart would refund it.
	if err := s.persistErr(); err != nil {
		resp.Status = "degraded"
		resp.PersistError = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// persistErr reports the durable log's sticky error (nil on an in-memory
// server).
func (s *Server) persistErr() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.Err()
}

// persistReady fails budget-mutating requests closed while the durable log
// is dead: a charge that can no longer be journalled would be refunded by
// the next restart, so the privacy accountant refuses it outright (503)
// rather than silently degrading to in-memory accounting. On failure it
// writes the error response and returns (outcome, false).
func (s *Server) persistReady(w http.ResponseWriter) (string, bool) {
	err := s.persistErr()
	if err == nil {
		return "", true
	}
	writeError(w, http.StatusServiceUnavailable, ErrorBody{
		Code:    CodeUnavailable,
		Message: fmt.Sprintf("durable state log failed, refusing new charges until restart: %v", err),
	})
	return CodeUnavailable, false
}

// handleBudget serves a tenant's budget ledger. The default response is the
// aggregated snapshot — atomic spent/remaining reads plus the accountant's
// incrementally-maintained per-mechanism map — so polling it costs O(number
// of mechanisms), not O(number of charges). ?log=1 opts in to the raw
// per-charge log for audit tooling that actually wants it.
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	s.finishTrace(t, labelTenants, s.serveBudget(t, r))
}

func (s *Server) serveBudget(w *traceWriter, r *http.Request) string {
	tenant := r.PathValue("id")
	w.tenant = tenant
	acct, ok := s.reg.Lookup(tenant)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorBody{
			Code:    CodeUnknownTenant,
			Message: fmt.Sprintf("tenant %q has not issued any requests", tenant),
		})
		return CodeUnknownTenant
	}
	resp := BudgetResponse{
		Tenant:            tenant,
		Budget:            acct.Budget(),
		Spent:             acct.Spent(),
		Remaining:         acct.Remaining(),
		RemainingFraction: acct.RemainingFraction(),
		Charges:           acct.ChargeCount(),
		SpentByMechanism:  acct.SpentByLabel(),
	}
	if r.URL.Query().Get("log") == "1" {
		charges := acct.Charges()
		resp.Log = make([]ChargeJSON, len(charges))
		for i, c := range charges {
			resp.Log[i] = ChargeJSON{Mechanism: c.Label, Epsilon: c.Epsilon}
		}
	}
	writeJSON(w, http.StatusOK, resp)
	return "ok"
}

// handleMechanism serves POST /v1/<name> for one registered mechanism. It is
// the whole serving pipeline, written once for every mechanism the engine
// knows — decode → validate → charge → pool-execute → encode — wrapped with
// the in-flight gauge and per-outcome request counters.
func (s *Server) handleMechanism(mech engine.Mechanism) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.hot.inFlight.Inc()
		defer s.hot.inFlight.Dec()
		t := s.beginTrace(w, r)
		outcome := s.serveMechanism(t, r, mech)
		s.finishTrace(t, mech.Name(), outcome)
		s.finishRequest(mech.Name(), outcome)
	}
}

// serveMechanism runs the generic pipeline and returns the outcome code for
// the request counters. Each stage boundary marks the trace context, so the
// request's latency decomposes into decode → resolve → validate → charge →
// execute → encode with nothing unattributed.
func (s *Server) serveMechanism(w *traceWriter, r *http.Request, mech engine.Mechanism) string {
	// One scratch carries the whole request through the pipeline: the body is
	// read into it, the request decodes into it, the mechanism executes out
	// of it and the response encodes into it. It goes back to the pool only
	// after the response bytes are on the wire.
	scr := scratchPool.Get().(*engine.Scratch)
	defer putScratch(scr)
	if code, ok := s.readBody(w, r, scr); !ok {
		return code
	}
	req, code, ok := s.decodeRequest(w, mech, scr)
	if !ok {
		return code
	}
	w.mark(stageDecode)
	// ?explain=1 returns the compiled query plan instead of executing the
	// mechanism: it resolves (so the plan cache and skipping observables
	// behave exactly as a real request would) but never charges budget and
	// never releases noisy answers.
	if explainRequested(r) {
		return s.serveExplain(w, req)
	}
	// Dataset-backed requests get their answers filled from the catalog's
	// cached item counts before validation, so Validate (and therefore the
	// charge) sees exactly what the mechanism will run on.
	if code, ok := s.resolve(w, req); !ok {
		return code
	}
	w.mark(stageResolve)
	base := req.Base()
	w.tenant, w.dataset = base.Tenant, base.Dataset
	if err := mech.Validate(req, s.limits()); err != nil {
		return badRequest(w, err)
	}

	if code, ok := s.persistReady(w); !ok {
		return code
	}
	w.mark(stageValidate)

	// Reserving the cost up front (rather than settling afterwards) is what
	// keeps concurrent requests from jointly overspending: the accountant
	// admits or rejects each reservation atomically. Validate ran first, so
	// a request the mechanism would reject never burns budget.
	tenant := base.Tenant
	cost := mech.Cost(req)
	remaining, code, ok := s.charge(w, tenant, mech.Name(), cost)
	if !ok {
		return code
	}
	// Re-check after the charge: in FsyncAlways mode the journal write runs
	// synchronously inside the charge, so a failure there must block THIS
	// request's release — a charge that never reached disk would be
	// refunded by the next restart while its DP results were already out.
	// (The charge stays spent; refusing the release is the safe direction.)
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	w.eps = cost
	w.mark(stageCharge)

	var (
		resp   engine.Response
		runErr error
	)
	if err := s.pool.do(r.Context(), func(src rng.Source) {
		resp, runErr = mech.Execute(src, req, scr)
	}); err != nil {
		return poolError(w, err)
	}
	if runErr != nil {
		return internalError(w, runErr)
	}
	w.mark(stageExecute)

	resp.SetBilling(tenant, cost, remaining)
	s.writeResponse(w, resp, scr)
	return "ok"
}

// readBody reads the request body into the scratch under the configured size
// cap. On failure it writes the error response and returns (outcome, false).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, scr *engine.Scratch) (string, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := scr.Body[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			scr.Body = buf
			if err == io.EOF {
				return "", true
			}
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
					Code:    CodeRequestTooLarge,
					Message: fmt.Sprintf("request body exceeds the server limit of %d bytes", tooLarge.Limit),
				})
				return CodeRequestTooLarge, false
			}
			return badRequest(w, fmt.Errorf("decoding JSON body: %v", err)), false
		}
	}
}

// decodeRequest parses the body bytes in scr into a request for mech: the
// built-in mechanisms go through the engine's hand-rolled codec (the request
// then aliases the scratch), custom mechanisms fall back to the stdlib strict
// decoder over the same bytes. Either way the semantics — unknown fields and
// trailing values rejected — and the error messages clients see are the ones
// the stdlib-backed decoder produced.
func (s *Server) decodeRequest(w http.ResponseWriter, mech engine.Mechanism, scr *engine.Scratch) (engine.Request, string, bool) {
	req, ok, err := engine.DecodeRequest(mech, scr.Body, scr)
	if !ok {
		req = mech.NewRequest()
		dec := json.NewDecoder(bytes.NewReader(scr.Body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			return nil, badRequest(w, fmt.Errorf("decoding JSON body: %v", err)), false
		}
		if dec.More() {
			return nil, badRequest(w, errors.New("request body holds more than one JSON value")), false
		}
		return req, "", true
	}
	switch {
	case err == nil:
		return req, "", true
	case errors.Is(err, engine.ErrTrailingData):
		return nil, badRequest(w, errors.New("request body holds more than one JSON value")), false
	default:
		return nil, badRequest(w, fmt.Errorf("decoding JSON body: %v", err)), false
	}
}

// writeResponse encodes resp through the zero-copy codec into the scratch's
// output buffer and writes it once. A ?trace=1 request gets the breakdown
// spliced into the already-encoded bytes at the offset AppendResponse
// reserved — the encode the trace reports is the encode that shipped, not a
// dry run. Responses without a codec fall back to encoding/json.
func (s *Server) writeResponse(t *traceWriter, resp engine.Response, scr *engine.Scratch) {
	out, off, ok, err := engine.AppendResponse(scr.Out[:0], resp)
	scr.Out = out
	if !ok || err != nil {
		if t.traceOn {
			writeTraced(t, resp)
			return
		}
		writeJSON(t, http.StatusOK, resp)
		t.mark(stageEncode)
		return
	}
	out = append(out, '\n')
	scr.Out = out
	if !t.traceOn {
		writeRawJSON(t, http.StatusOK, out)
		t.mark(stageEncode)
		return
	}
	// The bytes above are the real encode; close the stage before rendering
	// the breakdown so the trace accounts for it.
	t.mark(stageEncode)
	// The body buffer is free once decoding is done (decoded strings are
	// heap copies), so it backs the trace splice.
	tb, tok := appendTraceJSON(append(scr.Body[:0], `,"trace":`...), t.traceJSON())
	scr.Body = tb[:0]
	if !tok {
		writeTraced(t, resp)
		return
	}
	t.Header().Set("Content-Type", "application/json")
	t.WriteHeader(http.StatusOK)
	_, _ = t.Write(out[:off])
	_, _ = t.Write(tb)
	_, _ = t.Write(out[off:])
}

// writeTraced serves the ?trace=1 path: it measures a dry-run encode of the
// response so the encode stage can be reported inside the very trace it
// times, attaches the breakdown, and writes the response for real. The
// stage durations sum exactly to the reported total by construction.
func writeTraced(w *traceWriter, resp engine.Response) {
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(resp)
	w.mark(stageEncode)
	if t, ok := resp.(interface{ SetTrace(any) }); ok {
		t.SetTrace(w.traceJSON())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleUnknownMechanism serves every POST under /v1/ that no mechanism or
// fixed endpoint claimed, however many path segments it has.
func (s *Server) handleUnknownMechanism(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	// The label is pinned to "unknown" rather than the request path:
	// attacker-chosen label values would grow the metric registry (and
	// every /metrics scrape) without bound.
	s.countRequest("unknown", CodeUnknownMechanism)
	// Report the full registry-style name ("pipeline/median", not "median"),
	// since that is what the client must fix.
	name := strings.TrimPrefix(r.URL.Path, "/v1/")
	writeError(t, http.StatusNotFound, ErrorBody{
		Code:    CodeUnknownMechanism,
		Message: fmt.Sprintf("unknown mechanism %q (valid: %v, batch)", name, s.mechNames),
	})
	s.finishTrace(t, "unknown", CodeUnknownMechanism)
}

// limits returns the engine validation limits from the server configuration.
func (s *Server) limits() engine.Limits {
	return engine.Limits{MaxAnswers: s.cfg.MaxAnswers}
}

// finishRequest records the outcome counters shared by every endpoint.
func (s *Server) finishRequest(mech, outcome string) {
	s.countRequest(mech, outcome)
	if outcome == CodeBudgetExhausted {
		if c, ok := s.hot.exhausted[mech]; ok {
			c.Inc()
		} else {
			s.telemetry.Counter("freegap_budget_exhausted_total", telemetry.L("mechanism", mech)).Inc()
		}
	}
}

// countRequest increments the pre-resolved request counter for the
// (mechanism, outcome) pair, falling back to a registry lookup for any pair
// not provisioned in newHotCounters.
func (s *Server) countRequest(mech, code string) {
	if byCode, ok := s.hot.requests[mech]; ok {
		if c, ok := byCode[code]; ok {
			c.Inc()
			return
		}
	}
	s.telemetry.Counter("freegap_requests_total",
		telemetry.L("mechanism", mech), telemetry.L("code", code)).Inc()
}

// decode reads and strictly parses the JSON request body into dst. On failure
// it writes the error response and returns (outcome, false).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) (string, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
				Code:    CodeRequestTooLarge,
				Message: fmt.Sprintf("request body exceeds the server limit of %d bytes", tooLarge.Limit),
			})
			return CodeRequestTooLarge, false
		}
		return badRequest(w, fmt.Errorf("decoding JSON body: %v", err)), false
	}
	if dec.More() {
		return badRequest(w, errors.New("request body holds more than one JSON value")), false
	}
	return "", true
}

// charge reserves eps from the tenant's budget before the mechanism runs.
// On failure it writes the error response and returns ok = false with the
// outcome code.
func (s *Server) charge(w http.ResponseWriter, tenant, mech string, eps float64) (remaining float64, outcome string, ok bool) {
	remaining, err := s.reg.Charge(tenant, mech, eps)
	outcome, ok = s.classifyChargeError(w, tenant, remaining, err)
	return remaining, outcome, ok
}

// classifyChargeError writes the error response for a failed charge (single
// or batch) and returns its outcome code; a nil error yields ok = true.
func (s *Server) classifyChargeError(w http.ResponseWriter, tenant string, remaining float64, err error) (outcome string, ok bool) {
	var budgetErr *accountant.BudgetError
	switch {
	case err == nil:
		return "", true
	case errors.Is(err, accountant.ErrBudgetExceeded):
		body := ErrorBody{
			Code:      CodeBudgetExhausted,
			Message:   fmt.Sprintf("tenant %q: %v", tenant, err),
			Remaining: &remaining,
		}
		if errors.As(err, &budgetErr) {
			exhausted := budgetErr.Exhausted()
			body.Exhausted = &exhausted
		}
		writeError(w, http.StatusPaymentRequired, body)
		return CodeBudgetExhausted, false
	case errors.Is(err, ErrTenantLimit):
		writeError(w, http.StatusTooManyRequests, ErrorBody{Code: CodeTenantLimit, Message: err.Error()})
		return CodeTenantLimit, false
	default:
		return badRequest(w, err), false
	}
}

func badRequest(w http.ResponseWriter, err error) string {
	writeError(w, http.StatusBadRequest, ErrorBody{Code: CodeInvalidRequest, Message: err.Error()})
	return CodeInvalidRequest
}

// statusClientClosedRequest is nginx's non-standard code for "the client went
// away before we could answer"; it keeps routine disconnects out of the
// internal_error metrics. The reserved budget stays spent — the charge was
// admitted before the mechanism ran, and refunding on disconnect would let a
// client probe for free.
const statusClientClosedRequest = 499

// poolError classifies a pool submission failure: context cancellation means
// the client gave up while queued, pool shutdown means the server is
// draining; anything else is an internal fault.
func poolError(w http.ResponseWriter, err error) string {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, statusClientClosedRequest, ErrorBody{
			Code:    CodeCancelled,
			Message: fmt.Sprintf("request cancelled before a worker was available: %v", err),
		})
		return CodeCancelled
	case errors.Is(err, errPoolClosed):
		writeError(w, http.StatusServiceUnavailable, ErrorBody{
			Code:    CodeUnavailable,
			Message: "server is shutting down",
		})
		return CodeUnavailable
	default:
		return internalError(w, err)
	}
}

func internalError(w http.ResponseWriter, err error) string {
	writeError(w, http.StatusInternalServerError, ErrorBody{Code: CodeInternal, Message: err.Error()})
	return CodeInternal
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	// Every handler serves through a traceWriter, so error bodies can carry
	// the request id without threading it through each call site.
	if t, ok := w.(*traceWriter); ok {
		body.RequestID = t.reqID
	}
	if out, ok := appendErrorEnvelope(make([]byte, 0, 256), &body); ok {
		writeRawJSON(w, status, append(out, '\n'))
		return
	}
	writeJSON(w, status, ErrorEnvelope{Error: body})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeRawJSON writes pre-encoded JSON bytes (trailing newline included, to
// match what json.Encoder.Encode wrote on this wire before).
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
