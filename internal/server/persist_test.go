package server

// Crash-recovery end-to-end harness for the durable service state: spend
// budget and register datasets over the real HTTP surface, tear the server
// down — cleanly, crash-style, and with a torn WAL tail — restart it on the
// same state directory, and assert the restarted server resumes with the
// exact spent-budget state (per-mechanism breakdown included) and dataset
// catalog, with no way for a tenant to double-spend across the restart.
// Every test uses its own t.TempDir() state directory, so persisted-state
// tests can never collide with each other or with the in-memory suites.

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/store"
)

// persistTestOptions keeps flushes immediate-ish and compaction manual so
// restart tests are deterministic.
func persistTestOptions() persist.Options {
	return persist.Options{Fsync: persist.FsyncOff, FlushInterval: time.Millisecond, CompactEvery: -1}
}

func openLog(t *testing.T, dir string) *persist.Log {
	t.Helper()
	lg, err := persist.Open(dir, persistTestOptions())
	if err != nil {
		t.Fatalf("persist.Open(%s): %v", dir, err)
	}
	return lg
}

// newPersistentServer boots a server journalling into dir. The caller tears
// it down explicitly (cleanly via Close, or crash-style via Persist Abort
// followed by Close).
func newPersistentServer(t *testing.T, dir string, budget float64) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{TenantBudget: budget, Seed: 42, Workers: 1, Persist: openLog(t, dir)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// crash simulates a kill: the WAL is flushed (as it would be within one
// flush interval of the last request) but never compacted, and the server is
// torn down without the clean-shutdown path.
func crash(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	if err := s.Config().Persist.Flush(); err != nil {
		t.Fatalf("flush before crash: %v", err)
	}
	if err := s.Config().Persist.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	ts.Close()
	s.Close() // persist already aborted: this only stops the pool
}

func budgetOf(t *testing.T, ts *httptest.Server, tenant string) (BudgetResponse, []byte) {
	t.Helper()
	resp, data := getJSON(t, ts.URL+"/v1/tenants/"+tenant+"/budget")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget status = %d, body = %s", resp.StatusCode, data)
	}
	return decodeInto[BudgetResponse](t, data), data
}

func spendTopK(t *testing.T, ts *httptest.Server, tenant string, eps float64) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, ts.URL+"/v1/topk", TopKRequest{
		Common: Common{Tenant: tenant, Epsilon: eps, Answers: testAnswers, Monotonic: true}, K: 3})
}

// TestRestartRestoresBudgetsAndDatasets is the main crash-recovery pass:
// clean shutdown, restart, exact state.
func TestRestartRestoresBudgetsAndDatasets(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newPersistentServer(t, dir, 10)

	// Spend across mechanisms and tenants: single charges, an SVT
	// reservation and an atomic batch, so the restored per-mechanism
	// breakdown is non-trivial.
	if resp, data := spendTopK(t, ts1, "acme", 1.5); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d, body = %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts1.URL+"/v1/svt", SVTRequest{
		Common: Common{Tenant: "acme", Epsilon: 2, Answers: testAnswers, Monotonic: true},
		K:      2, Threshold: 500, Adaptive: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("svt status = %d, body = %s", resp.StatusCode, data)
	}
	item, _ := json.Marshal(TopKRequest{Common: Common{Epsilon: 0.25, Answers: testAnswers}, K: 2})
	if resp, data := postJSON(t, ts1.URL+"/v1/batch", BatchRequest{
		Tenant:   "globex",
		Requests: []BatchItem{{Mechanism: "topk", Request: item}, {Mechanism: "topk", Request: item}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body = %s", resp.StatusCode, data)
	}

	// Register one uploaded and one synthetic dataset.
	if resp, data := postJSON(t, ts1.URL+"/v1/datasets", DatasetUploadRequest{
		Name: "sales", FIMI: "0 1 2\n1 2\n2\n"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body = %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts1.URL+"/v1/datasets", DatasetUploadRequest{
		Name: "demo", Synthetic: &SyntheticSpec{Kind: "kosarak", Scale: 2000, Seed: 7}}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("synthetic upload status = %d, body = %s", resp.StatusCode, data)
	}
	// A dataset-backed request against the fresh registration.
	if resp, data := postJSON(t, ts1.URL+"/v1/topk", TopKRequest{
		Common: Common{Tenant: "acme", Epsilon: 1, Dataset: "demo", Queries: &QuerySpec{Kind: "all_items"}},
		K:      3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("dataset topk status = %d, body = %s", resp.StatusCode, data)
	}

	wantAcme, wantAcmeRaw := budgetOf(t, ts1, "acme")
	wantGlobex, wantGlobexRaw := budgetOf(t, ts1, "globex")
	_, wantDatasets := getJSON(t, ts1.URL+"/v1/datasets")

	// Clean shutdown: flush + compact + close.
	ts1.Close()
	s1.Close()

	s2, ts2 := newPersistentServer(t, dir, 10)
	defer s2.Close()

	// Budgets: byte-identical ledgers (budget, spent, remaining, charge
	// count, per-mechanism breakdown).
	gotAcme, gotAcmeRaw := budgetOf(t, ts2, "acme")
	if !bytes.Equal(gotAcmeRaw, wantAcmeRaw) {
		t.Errorf("acme ledger changed across restart:\n before %s\n after  %s", wantAcmeRaw, gotAcmeRaw)
	}
	if gotAcme.Spent != wantAcme.Spent || gotAcme.Charges != wantAcme.Charges {
		t.Errorf("acme spent/charges = %v/%d, want %v/%d", gotAcme.Spent, gotAcme.Charges, wantAcme.Spent, wantAcme.Charges)
	}
	for mech, eps := range wantAcme.SpentByMechanism {
		if math.Abs(gotAcme.SpentByMechanism[mech]-eps) > 1e-12 {
			t.Errorf("acme spent[%s] = %v, want %v", mech, gotAcme.SpentByMechanism[mech], eps)
		}
	}
	if _, gotGlobexRaw := budgetOf(t, ts2, "globex"); !bytes.Equal(gotGlobexRaw, wantGlobexRaw) {
		t.Errorf("globex ledger changed across restart")
	}
	_ = wantGlobex

	// Datasets: same catalog, same record/item counts; resolution counters
	// reset with the process (they are serving telemetry, not state), so
	// compare the durable fields.
	wantList := decodeInto[DatasetListResponse](t, wantDatasets)
	_, gotDatasetsRaw := getJSON(t, ts2.URL+"/v1/datasets")
	gotList := decodeInto[DatasetListResponse](t, gotDatasetsRaw)
	if len(gotList.Datasets) != len(wantList.Datasets) {
		t.Fatalf("dataset count = %d, want %d", len(gotList.Datasets), len(wantList.Datasets))
	}
	for i, want := range wantList.Datasets {
		got := gotList.Datasets[i]
		if got.Name != want.Name || got.Records != want.Records || got.Items != want.Items || got.Source != want.Source {
			t.Errorf("dataset[%d] = %+v, want %+v", i, got, want)
		}
		// The restored registration recomputed the counts exactly once.
		if got.CountScans != 1 {
			t.Errorf("dataset %q count scans = %d, want 1 (zero-rescan restore)", got.Name, got.CountScans)
		}
	}

	// Restored datasets must serve dataset-backed queries from the
	// recomputed cache.
	if resp, data := postJSON(t, ts2.URL+"/v1/topk", TopKRequest{
		Common: Common{Tenant: "acme", Epsilon: 0.5, Dataset: "sales", Queries: &QuerySpec{Kind: "all_items"}},
		K:      2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("restored dataset topk status = %d, body = %s", resp.StatusCode, data)
	}
}

// TestRestartAfterCrashNoDoubleSpend kills the server without the clean
// shutdown path and asserts the WAL alone restores the exact spend — a
// restart must never refund budget, and the restored tenant cannot spend
// more than the original remainder.
func TestRestartAfterCrashNoDoubleSpend(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newPersistentServer(t, dir, 10)

	// Spend 6 of 10.
	for i := 0; i < 4; i++ {
		if resp, data := spendTopK(t, ts1, "acme", 1.5); resp.StatusCode != http.StatusOK {
			t.Fatalf("topk status = %d, body = %s", resp.StatusCode, data)
		}
	}
	want, _ := budgetOf(t, ts1, "acme")
	crash(t, s1, ts1)
	// No snapshot: the crash-style teardown skipped compaction.
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); !os.IsNotExist(err) {
		t.Fatalf("crash teardown wrote a snapshot (err %v)", err)
	}

	s2, ts2 := newPersistentServer(t, dir, 10)
	got, _ := budgetOf(t, ts2, "acme")
	if got.Spent != want.Spent || got.Remaining != want.Remaining || got.Charges != want.Charges {
		t.Fatalf("ledger after crash = %+v, want %+v", got, want)
	}

	// Double-spend check: another 6ε must NOT fit (6 spent + 6 > 10); the
	// refusal is the would-exceed flavour, and the original remainder still
	// serves.
	resp, data := spendTopK(t, ts2, "acme", 6)
	if resp.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("over-remainder spend status = %d, body = %s", resp.StatusCode, data)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeBudgetExhausted {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeBudgetExhausted)
	}
	if env.Error.Exhausted == nil || *env.Error.Exhausted {
		t.Errorf("exhausted = %v, want false (budget remains, charge too large)", env.Error.Exhausted)
	}
	if env.Error.Remaining == nil || math.Abs(*env.Error.Remaining-4) > 1e-9 {
		t.Errorf("remaining = %v, want 4", env.Error.Remaining)
	}
	if resp, data := spendTopK(t, ts2, "acme", 4); resp.StatusCode != http.StatusOK {
		t.Fatalf("exact-remainder spend status = %d, body = %s", resp.StatusCode, data)
	}

	// Crash again with the budget fully spent; after the next restart the
	// 402 must be the exhausted flavour with an exact, stable body.
	crash(t, s2, ts2)
	s3, ts3 := newPersistentServer(t, dir, 10)
	defer s3.Close()
	resp1, body1 := spendTopK(t, ts3, "acme", 0.5)
	resp2, body2 := spendTopK(t, ts3, "acme", 0.5)
	if resp1.StatusCode != http.StatusPaymentRequired || resp2.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("post-exhaustion statuses = %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	// The bodies must agree on everything but the per-request id, which is
	// unique by design.
	env1, env2 := decodeInto[ErrorEnvelope](t, body1), decodeInto[ErrorEnvelope](t, body2)
	if env1.Error.RequestID == "" || env1.Error.RequestID == env2.Error.RequestID {
		t.Errorf("request ids = %q, %q, want distinct non-empty", env1.Error.RequestID, env2.Error.RequestID)
	}
	env1.Error.RequestID, env2.Error.RequestID = "", ""
	norm1, _ := json.Marshal(env1)
	norm2, _ := json.Marshal(env2)
	if !bytes.Equal(norm1, norm2) {
		t.Errorf("402 body not stable: %s vs %s", body1, body2)
	}
	env = decodeInto[ErrorEnvelope](t, body1)
	if env.Error.Exhausted == nil || !*env.Error.Exhausted {
		t.Errorf("exhausted = %v, want true", env.Error.Exhausted)
	}
	if env.Error.Remaining == nil || *env.Error.Remaining != 0 {
		t.Errorf("remaining = %v, want 0", env.Error.Remaining)
	}
}

// TestRestartWithTruncatedTailWAL tears the WAL mid-record (a torn final
// write) and asserts the restart recovers to the last complete record.
func TestRestartWithTruncatedTailWAL(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newPersistentServer(t, dir, 10)
	if resp, data := spendTopK(t, ts1, "acme", 1.5); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d, body = %s", resp.StatusCode, data)
	}
	if resp, data := spendTopK(t, ts1, "acme", 2.5); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d, body = %s", resp.StatusCode, data)
	}
	crash(t, s1, ts1)

	// Tear the tail: chop the WAL mid-way through its final record.
	walPath := filepath.Join(dir, "wal.jsonl")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != 3 { // begin + 2 charges
		t.Fatalf("WAL holds %d lines, want 3: %s", len(lines), data)
	}
	last := lines[len(lines)-1]
	torn := data[:len(data)-len(last)-1+len(last)/2] // half the final record, no newline
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newPersistentServer(t, dir, 10)
	defer s2.Close()
	got, _ := budgetOf(t, ts2, "acme")
	if got.Spent != 1.5 || got.Charges != 1 {
		t.Errorf("recovered ledger = spent %v, %d charges; want 1.5 and 1 (last complete record)", got.Spent, got.Charges)
	}
	// The server stays fully writable after tail recovery.
	if resp, data := spendTopK(t, ts2, "acme", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery spend status = %d, body = %s", resp.StatusCode, data)
	}
}

// TestRestartPreloadDoesNotConflict boots a preloading server on a state
// directory twice: the second boot must skip the already-restored preload
// instead of failing with dataset_exists, and charges keep accumulating.
func TestRestartPreloadDoesNotConflict(t *testing.T) {
	dir := t.TempDir()
	boot := func() (*Server, *httptest.Server) {
		s, err := New(Config{
			TenantBudget: 10, Seed: 42, Workers: 1,
			Persist: openLog(t, dir),
			Preload: []store.Preload{{Name: "pre", Synthetic: "bmspos", Scale: 5000, Seed: 3}},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		return s, ts
	}

	s1, ts1 := boot()
	if resp, data := postJSON(t, ts1.URL+"/v1/topk", TopKRequest{
		Common: Common{Tenant: "acme", Epsilon: 1, Dataset: "pre", Queries: &QuerySpec{Kind: "all_items"}},
		K:      2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("preloaded topk status = %d, body = %s", resp.StatusCode, data)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := boot()
	defer s2.Close()
	got, _ := budgetOf(t, ts2, "acme")
	if got.Spent != 1 {
		t.Errorf("spent = %v, want 1", got.Spent)
	}
	resp, data := getJSON(t, ts2.URL+"/v1/datasets/pre")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dataset status = %d, body = %s", resp.StatusCode, data)
	}
}

// TestDatasetRegistrationRolledBackOnJournalFailure: when a dataset cannot
// be journalled (here: the log is closed, as during shutdown), the upload
// must fail as a server fault (500, not 400), the name must not be taken,
// and a retry must not see dataset_exists — "registered" stays equivalent
// to "survives a restart".
func TestDatasetRegistrationRolledBackOnJournalFailure(t *testing.T) {
	dir := t.TempDir()
	s, ts := newPersistentServer(t, dir, 10)
	defer s.Close()

	// Kill the journal out from under the server.
	if err := s.Config().Persist.Abort(); err != nil {
		t.Fatal(err)
	}

	upload := DatasetUploadRequest{Name: "doomed", FIMI: "0 1\n1\n"}
	resp, data := postJSON(t, ts.URL+"/v1/datasets", upload)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("upload status = %d, body = %s (want 500: persistence fault, not client error)", resp.StatusCode, data)
	}
	if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeInternal {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeInternal)
	}

	// The name was not burned: no phantom entry, and a retry repeats the
	// 500 rather than claiming dataset_exists.
	if resp, _ := getJSON(t, ts.URL+"/v1/datasets/doomed"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("rolled-back dataset still served: status %d", resp.StatusCode)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/datasets", upload); resp.StatusCode == http.StatusConflict {
		t.Errorf("retry saw dataset_exists after rollback: %s", data)
	}
	// The blob written ahead of the failed WAL record was reclaimed too.
	if _, err := os.Stat(filepath.Join(dir, "datasets", "doomed.fimi")); !os.IsNotExist(err) {
		t.Errorf("orphaned blob left behind after rollback (err %v)", err)
	}
}

// TestChargesFailClosedOnDeadJournal: once the WAL hits an I/O error, the
// accountant fails closed — budget-mutating requests get 503, nothing is
// charged, and /healthz reports the degraded state — instead of silently
// degrading to in-memory accounting that the next restart would refund.
func TestChargesFailClosedOnDeadJournal(t *testing.T) {
	dir := t.TempDir()
	s, ts := newPersistentServer(t, dir, 10)
	defer s.Close()

	if resp, data := spendTopK(t, ts, "acme", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy spend status = %d, body = %s", resp.StatusCode, data)
	}

	s.Config().Persist.FailForTest(errors.New("simulated WAL failure"))

	// Single and batched charges are refused with 503 and charge nothing.
	resp, data := spendTopK(t, ts, "acme", 1)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead-journal spend status = %d, body = %s", resp.StatusCode, data)
	}
	if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeUnavailable {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeUnavailable)
	}
	item, _ := json.Marshal(TopKRequest{Common: Common{Epsilon: 0.25, Answers: testAnswers}, K: 2})
	if resp, data := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Tenant: "acme", Requests: []BatchItem{{Mechanism: "topk", Request: item}},
	}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead-journal batch status = %d, body = %s", resp.StatusCode, data)
	}
	if got, _ := budgetOf(t, ts, "acme"); got.Spent != 1 {
		t.Errorf("spent = %v after refused charges, want 1", got.Spent)
	}

	// Reads still serve; health reports the page-worthy condition.
	resp, data = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	health := decodeInto[HealthResponse](t, data)
	if health.Status != "degraded" || health.PersistError == "" {
		t.Errorf("healthz = %+v, want degraded with persist_error", health)
	}
}

// TestRegisterDatasetPreservesDeclaredUniverse: synthetic generators declare
// item universes larger than the ids their transactions contain, and the
// FIMI blob format only carries observed ids — the journalled record's Items
// field must restore the declared size so all_items workloads keep their
// exact shape across a restart, including through the public
// RegisterDataset API.
func TestRegisterDatasetPreservesDeclaredUniverse(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newPersistentServer(t, dir, 10)

	db, err := store.GenerateSynthetic("kosarak", 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.RegisterDataset("wide", "synthetic:kosarak", db); err != nil {
		t.Fatalf("RegisterDataset: %v", err)
	}
	want := db.NumItems()
	ts1.Close()
	s1.Close()

	s2, ts2 := newPersistentServer(t, dir, 10)
	defer s2.Close()
	resp, data := getJSON(t, ts2.URL+"/v1/datasets/wide")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dataset status = %d, body = %s", resp.StatusCode, data)
	}
	info := decodeInto[DatasetInfo](t, data)
	if info.Items != want {
		t.Errorf("restored universe = %d items, want %d (declared universe must survive the blob round trip)", info.Items, want)
	}
}
