package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFIMIBasic(t *testing.T) {
	input := "1 2 3\n\n4 5\n7\n"
	db, err := ReadFIMI(strings.NewReader(input), "test")
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != 3 {
		t.Fatalf("records = %d, want 3 (blank line skipped)", db.NumRecords())
	}
	if db.NumItems() != 8 {
		t.Fatalf("items = %d, want 8", db.NumItems())
	}
}

func TestReadFIMIErrors(t *testing.T) {
	cases := []string{"1 2 x\n", "1 -2\n"}
	for _, input := range cases {
		if _, err := ReadFIMI(strings.NewReader(input), "bad"); err == nil {
			t.Errorf("expected error for input %q", input)
		}
	}
}

func TestReadFIMILimited(t *testing.T) {
	if _, err := ReadFIMILimited(strings.NewReader("1 2\n3\n4\n"), "t", FIMILimits{MaxRecords: 2}); err == nil {
		t.Error("record count beyond the limit accepted")
	}
	if _, err := ReadFIMILimited(strings.NewReader("1 2000000000\n"), "t", FIMILimits{MaxItemID: 1000}); err == nil {
		t.Error("item id beyond the limit accepted")
	}
	db, err := ReadFIMILimited(strings.NewReader("1 2\n3\n"), "t", FIMILimits{MaxRecords: 2, MaxItemID: 3})
	if err != nil {
		t.Fatalf("within limits: %v", err)
	}
	if db.NumRecords() != 2 || db.NumItems() != 4 {
		t.Errorf("db = %d records, %d items", db.NumRecords(), db.NumItems())
	}
	// Zero limits mean unlimited, matching plain ReadFIMI.
	if _, err := ReadFIMILimited(strings.NewReader("1 2\n3\n4\n"), "t", FIMILimits{}); err != nil {
		t.Errorf("unlimited parse failed: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	db := smallDB()
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFIMI(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != db.NumRecords() {
		t.Fatalf("records %d != %d", back.NumRecords(), db.NumRecords())
	}
	for i := 0; i < db.NumRecords(); i++ {
		a, b := db.Record(i), back.Record(i)
		if len(a) != len(b) {
			t.Fatalf("record %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("record %d item %d: %d != %d", i, j, a[j], b[j])
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.dat")
	db := smallDB()
	if err := WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFIMIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gotCounts := back.ItemCounts()
	wantCounts := db.ItemCounts()
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("counts differ after file round trip at item %d", i)
		}
	}
}

func TestReadFIMIFileMissing(t *testing.T) {
	if _, err := ReadFIMIFile("/nonexistent/path/x.dat"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
