package server

// Request and response bodies of the dpserver HTTP/JSON API. Every request
// names a tenant; the server charges that tenant's privacy accountant
// atomically before running the mechanism, so concurrent clients of the same
// tenant can never jointly overspend the budget.

// TopKRequest is the body of POST /v1/topk.
type TopKRequest struct {
	// Tenant identifies whose privacy budget pays for the query.
	Tenant string `json:"tenant"`
	// K is the number of queries to select.
	K int `json:"k"`
	// Epsilon is the privacy budget this request spends.
	Epsilon float64 `json:"epsilon"`
	// Answers are the true query answers (sensitivity 1 each).
	Answers []float64 `json:"answers"`
	// Monotonic declares a monotonic (e.g. counting) query list, halving the
	// required noise scale.
	Monotonic bool `json:"monotonic,omitempty"`
}

// SelectionJSON is one selected query in a TopKResponse.
type SelectionJSON struct {
	// Index is the query's position in the request's answers.
	Index int `json:"index"`
	// Gap is the released noisy gap to the next-ranked query.
	Gap float64 `json:"gap"`
}

// TopKResponse is the body of a successful POST /v1/topk.
type TopKResponse struct {
	Tenant string `json:"tenant"`
	// Selections lists the k selected queries in descending noisy order.
	Selections []SelectionJSON `json:"selections"`
	// EpsilonSpent is the budget charged to the tenant for this request.
	EpsilonSpent float64 `json:"epsilon_spent"`
	// BudgetRemaining is the tenant's unspent budget after this request.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// MaxRequest is the body of POST /v1/max (the k = 1 special case).
type MaxRequest struct {
	Tenant    string    `json:"tenant"`
	Epsilon   float64   `json:"epsilon"`
	Answers   []float64 `json:"answers"`
	Monotonic bool      `json:"monotonic,omitempty"`
}

// MaxResponse is the body of a successful POST /v1/max.
type MaxResponse struct {
	Tenant string `json:"tenant"`
	// Index is the approximately largest query.
	Index int `json:"index"`
	// Gap is the noisy gap to the runner-up.
	Gap             float64 `json:"gap"`
	EpsilonSpent    float64 `json:"epsilon_spent"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// SVTRequest is the body of POST /v1/svt.
type SVTRequest struct {
	Tenant string `json:"tenant"`
	// K is the number of above-threshold answers to provision for.
	K int `json:"k"`
	// Epsilon is the privacy budget this request reserves. The adaptive
	// variant may spend less internally, but the tenant is charged the full
	// reservation so concurrent requests stay sound.
	Epsilon float64 `json:"epsilon"`
	// Threshold is the public threshold.
	Threshold float64   `json:"threshold"`
	Answers   []float64 `json:"answers"`
	Monotonic bool      `json:"monotonic,omitempty"`
	// Adaptive selects Adaptive-Sparse-Vector-with-Gap (Algorithm 2) instead
	// of plain Sparse-Vector-with-Gap.
	Adaptive bool `json:"adaptive,omitempty"`
}

// SVTAnswerJSON is one above-threshold answer in an SVTResponse.
type SVTAnswerJSON struct {
	// Index is the query's position in the request's answers.
	Index int `json:"index"`
	// Gap is the released noisy gap above the (noisy) threshold.
	Gap float64 `json:"gap"`
	// Estimate is gap + threshold, the selection-stage estimate of the answer.
	Estimate float64 `json:"estimate"`
	// Branch names the adaptive branch that answered: below, top or middle.
	Branch string `json:"branch"`
}

// SVTResponse is the body of a successful POST /v1/svt.
type SVTResponse struct {
	Tenant string `json:"tenant"`
	// Above lists the above-threshold answers in stream order.
	Above []SVTAnswerJSON `json:"above"`
	// AboveCount is len(Above).
	AboveCount int `json:"above_count"`
	// QueriesProcessed is how far into the stream the mechanism got before
	// stopping.
	QueriesProcessed int `json:"queries_processed"`
	// MechanismSpent is the budget the mechanism consumed internally (the
	// adaptive variant may spend less than the reservation).
	MechanismSpent  float64 `json:"mechanism_spent"`
	EpsilonSpent    float64 `json:"epsilon_spent"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// BudgetResponse is the body of GET /v1/tenants/{id}/budget.
type BudgetResponse struct {
	Tenant string `json:"tenant"`
	// Budget is the tenant's configured total ε budget.
	Budget float64 `json:"budget"`
	// Spent is the total ε charged so far.
	Spent float64 `json:"spent"`
	// Remaining is Budget − Spent (never negative).
	Remaining float64 `json:"remaining"`
	// RemainingFraction is Remaining/Budget.
	RemainingFraction float64 `json:"remaining_fraction"`
	// Charges is the number of admitted requests.
	Charges int `json:"charges"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	// Tenants is the number of tenants with a live accountant.
	Tenants int `json:"tenants"`
	// Workers is the size of the mechanism worker pool.
	Workers int `json:"workers"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Error codes used in ErrorBody.Code.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeUnknownMechanism = "unknown_mechanism"
	CodeUnknownTenant    = "unknown_tenant"
	CodeBudgetExhausted  = "budget_exhausted"
	CodeTenantLimit      = "tenant_limit"
	CodeCancelled        = "cancelled"
	CodeRequestTooLarge  = "request_too_large"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal_error"
)

// ErrorBody is the machine-readable error payload.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// Remaining is the tenant's remaining budget; only set for
	// budget_exhausted errors.
	Remaining *float64 `json:"remaining,omitempty"`
}

// ErrorEnvelope wraps every non-2xx response body.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
