package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// WriteTable renders a figure as an aligned text table: one row per x value,
// one column per series.
func WriteTable(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "# %s (%s)\n", f.Title, f.ID); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))

	for _, row := range figureRows(f) {
		cells := make([]string, 0, len(row))
		cells = append(cells, formatNumber(row[0]))
		for _, v := range row[1:] {
			cells = append(cells, formatNumber(v))
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	return tw.Flush()
}

// WriteCSV renders a figure as CSV with an x column followed by one column per
// series.
func WriteCSV(w io.Writer, f Figure) error {
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range figureRows(f) {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatNumber(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// figureRows aligns all series of a figure on their x values (series are
// expected to share the same x grid; missing values render as NaN).
func figureRows(f Figure) [][]float64 {
	// Collect the x grid in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	rows := make([][]float64, 0, len(xs))
	for _, x := range xs {
		row := make([]float64, 1, 1+len(f.Series))
		row[0] = x
		for _, s := range f.Series {
			v := math.NaN()
			for _, p := range s.Points {
				if p.X == x {
					v = p.Y
					break
				}
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows
}

func formatNumber(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteDatasetStats renders the Section 7.1 dataset table.
func WriteDatasetStats(w io.Writer, rows []DatasetStatsRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t# of Records\t# of Unique Items\tMean Length")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\n", r.Name, r.Records, r.Items, r.MeanLength)
	}
	return tw.Flush()
}

// WriteAlignment renders the randomness-alignment verification table.
func WriteAlignment(w io.Writer, rows []AlignmentRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mechanism\tepsilon\toutputs preserved\tmax alignment cost\twithin budget")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d/%d\t%.4f\t%v\n", r.Mechanism, r.Epsilon, r.OutputPreserved, r.Trials, r.MaxCost, r.OK)
	}
	return tw.Flush()
}

// WritePrivacyAudit renders the privacy-audit table.
func WritePrivacyAudit(w io.Writer, rows []PrivacyAuditRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mechanism\tconfigured epsilon\tempirical epsilon-hat\tdistinct outputs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\n", r.Mechanism, r.Epsilon, r.EpsilonHat, r.Outputs)
	}
	return tw.Flush()
}
