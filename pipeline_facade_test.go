package freegap_test

import (
	"math"
	"testing"

	freegap "github.com/freegap/freegap"
)

func TestFacadeTopKPipeline(t *testing.T) {
	src := freegap.NewSource(5)
	counts := make([]float64, 40)
	for i := range counts {
		counts[i] = float64(2000 - 30*i)
	}
	acct, err := freegap.NewAccountant(1.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := freegap.RunTopKPipeline(src, counts, freegap.TopKPipelineConfig{
		K: 5, Epsilon: 1.5, Monotonic: true,
	}, acct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 5 {
		t.Fatalf("estimates %d", len(res.Estimates))
	}
	if math.Abs(acct.Spent()-1.5) > 1e-9 {
		t.Fatalf("accountant spent %v", acct.Spent())
	}
}

func TestFacadeSVTPipeline(t *testing.T) {
	src := freegap.NewSource(7)
	counts := make([]float64, 40)
	for i := range counts {
		counts[i] = float64(2000 - 30*i)
	}
	res, err := freegap.RunSVTPipeline(src, counts, freegap.SVTPipelineConfig{
		K: 4, Epsilon: 2, Threshold: 1500, Adaptive: true, Monotonic: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount == 0 {
		t.Fatal("expected above-threshold answers")
	}
	for _, e := range res.Estimates {
		if e.LowerBound >= e.GapEstimate {
			t.Fatalf("lower bound %v should sit below the estimate %v", e.LowerBound, e.GapEstimate)
		}
	}
}

func TestFacadeAlignmentVerification(t *testing.T) {
	d := []float64{20, 18, 15, 3, 2, 1}
	dPrime := []float64{19, 17, 15, 2, 2, 1}

	topk, err := freegap.NewTopKWithGap(2, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := freegap.VerifyTopKAlignment(topk, d, dPrime, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("Top-K alignment verification failed: %v", rep)
	}

	svt, err := freegap.NewAdaptiveSVTWithGap(2, 0.9, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = freegap.VerifyAdaptiveSVTAlignment(svt, d, dPrime, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("Adaptive SVT alignment verification failed: %v", rep)
	}
}
