package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

// quickConfig keeps the experiment tests fast: tiny datasets, few trials.
func quickConfig() Config {
	return Config{
		Seed:            3,
		Trials:          60,
		Scale:           500,
		Epsilon:         0.7,
		Ks:              []int{2, 5, 10},
		Epsilons:        []float64{0.3, 0.7, 1.1},
		FixedK:          5,
		CompensateScale: true,
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c.Trials != d.Trials || c.Scale != d.Scale || c.Epsilon != d.Epsilon || c.FixedK != d.FixedK {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if len(c.Ks) == 0 || len(c.Epsilons) == 0 {
		t.Fatal("default grids empty")
	}
	p := PaperConfig()
	if p.Scale != 1 || p.Trials != 10000 {
		t.Fatalf("paper config drifted: %+v", p)
	}
}

func TestBuildWorkload(t *testing.T) {
	c := quickConfig()
	for _, name := range []string{workloadBMSPOS, workloadKosarak, workloadQuest} {
		w, err := c.BuildWorkload(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Counts) == 0 {
			t.Fatalf("%s: empty counts", name)
		}
	}
	if _, err := c.BuildWorkload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	ws, err := c.Workloads()
	if err != nil || len(ws) != 3 {
		t.Fatalf("Workloads: %v, %d", err, len(ws))
	}
}

func TestRunTrialsDeterministicAndComplete(t *testing.T) {
	sums1 := runTrials(200, 9, 1, func(src *rng.Xoshiro) map[string]float64 {
		return map[string]float64{"v": float64(src.Uint64() % 1000), "n": 1}
	})
	sums2 := runTrials(200, 9, 7, func(src *rng.Xoshiro) map[string]float64 {
		return map[string]float64{"v": float64(src.Uint64() % 1000), "n": 1}
	})
	if sums1["n"] != 200 || sums2["n"] != 200 {
		t.Fatalf("trials dropped: %v vs %v", sums1["n"], sums2["n"])
	}
	if sums1["v"] != sums2["v"] {
		t.Fatalf("parallelism changed results: %v vs %v", sums1["v"], sums2["v"])
	}
}

func TestFig1aShape(t *testing.T) {
	c := quickConfig()
	fig, err := c.Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	checkImprovementFigure(t, fig, c.Ks, 45)
}

func TestFig1bShape(t *testing.T) {
	c := quickConfig()
	fig, err := c.Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	checkImprovementFigure(t, fig, c.Ks, 50)
	// For Top-K the k=10 improvement should already be substantial (theory:
	// 45%); allow wide Monte-Carlo slack but demand a clear win.
	last := fig.Series[0].Points[len(fig.Series[0].Points)-1]
	if last.Y < 20 {
		t.Fatalf("k=%v Top-K improvement %.1f%%, expected a clear gain", last.X, last.Y)
	}
}

func checkImprovementFigure(t *testing.T, fig Figure, ks []int, maxTheory float64) {
	t.Helper()
	if len(fig.Series) != 2 {
		t.Fatalf("want empirical + theory series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(ks) {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.Points), len(ks))
		}
	}
	theory := fig.Series[1]
	prev := -1.0
	for _, p := range theory.Points {
		if p.Y < 0 || p.Y > maxTheory {
			t.Fatalf("theoretical improvement %v out of range (0, %v]", p.Y, maxTheory)
		}
		if p.Y < prev {
			t.Fatalf("theoretical improvement should not decrease with k")
		}
		prev = p.Y
	}
	// Empirical improvements should be finite and not catastrophically
	// negative (the estimator never does much worse than the baseline).
	for _, p := range fig.Series[0].Points {
		if math.IsNaN(p.Y) || p.Y < -30 || p.Y > 100 {
			t.Fatalf("empirical improvement %v implausible", p.Y)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	c := quickConfig()
	figA, err := c.Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	figB, err := c.Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{figA, figB} {
		if len(fig.Series) != 2 {
			t.Fatalf("%s: want 2 series", fig.ID)
		}
		for _, s := range fig.Series {
			if len(s.Points) != len(c.Epsilons) {
				t.Fatalf("%s/%s: %d points, want %d", fig.ID, s.Name, len(s.Points), len(c.Epsilons))
			}
		}
		// Theory is flat in epsilon.
		th := fig.Series[1].Points
		for i := 1; i < len(th); i++ {
			if math.Abs(th[i].Y-th[0].Y) > 1e-9 {
				t.Fatalf("%s: theoretical curve should be independent of epsilon", fig.ID)
			}
		}
	}
}

func TestFig3CountsAdaptiveAnswersMore(t *testing.T) {
	c := quickConfig()
	figs, err := c.Fig3Counts()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("want one figure per dataset, got %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 3 {
			t.Fatalf("%s: want 3 series", fig.ID)
		}
		svt, mid, top := fig.Series[0], fig.Series[1], fig.Series[2]
		for i := range svt.Points {
			k := svt.Points[i].X
			adaptiveTotal := mid.Points[i].Y + top.Points[i].Y
			// SVT answers at most k above-threshold queries.
			if svt.Points[i].Y > k+1e-9 {
				t.Fatalf("%s: SVT answered %v > k=%v", fig.ID, svt.Points[i].Y, k)
			}
			// The adaptive variant must answer at least as many on average.
			if adaptiveTotal+1e-9 < svt.Points[i].Y {
				t.Fatalf("%s k=%v: adaptive answered %v < SVT %v", fig.ID, k, adaptiveTotal, svt.Points[i].Y)
			}
		}
		// At the largest k the adaptive total should exceed SVT clearly
		// (Figure 3 shows up to ~15 extra answers at k=25).
		last := len(svt.Points) - 1
		if mid.Points[last].Y+top.Points[last].Y < svt.Points[last].Y {
			t.Fatalf("%s: no adaptive advantage at k=%v", fig.ID, svt.Points[last].X)
		}
	}
}

func TestFig3QualityBounds(t *testing.T) {
	c := quickConfig()
	c.Ks = []int{2, 5}
	figs, err := c.Fig3Quality()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("want 3 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 4 {
			t.Fatalf("%s: want 4 series", fig.ID)
		}
		for _, s := range fig.Series {
			for _, p := range s.Points {
				if p.Y < 0 || p.Y > 1+1e-9 {
					t.Fatalf("%s/%s: value %v outside [0,1]", fig.ID, s.Name, p.Y)
				}
			}
		}
		// F-measure of the adaptive variant should be at least that of SVT
		// (it answers more queries at comparable precision).
		svtF, adaF := fig.Series[2], fig.Series[3]
		for i := range svtF.Points {
			if adaF.Points[i].Y+0.1 < svtF.Points[i].Y {
				t.Fatalf("%s k=%v: adaptive F %v well below SVT F %v",
					fig.ID, svtF.Points[i].X, adaF.Points[i].Y, svtF.Points[i].Y)
			}
		}
	}
}

func TestFig4RemainingBudget(t *testing.T) {
	c := quickConfig()
	fig, err := c.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 dataset series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 100 {
				t.Fatalf("%s: remaining %v%% outside [0,100]", s.Name, p.Y)
			}
		}
		// The headline Figure 4 result: a substantial fraction of the budget
		// (the paper reports ≈40%) is left over after k answers.
		last := s.Points[len(s.Points)-1]
		if last.Y < 15 {
			t.Fatalf("%s: only %v%% budget remaining at k=%v, expected a sizeable saving", s.Name, last.Y, last.X)
		}
	}
}

func TestCorollary1Figure(t *testing.T) {
	c := quickConfig()
	fig, err := c.Corollary1()
	if err != nil {
		t.Fatal(err)
	}
	emp, th := fig.Series[0], fig.Series[1]
	for i := range emp.Points {
		if math.Abs(emp.Points[i].Y-th.Points[i].Y) > 0.12 {
			t.Fatalf("k=%v: empirical ratio %v far from Corollary 1 %v",
				emp.Points[i].X, emp.Points[i].Y, th.Points[i].Y)
		}
	}
}

func TestSVTCombineRatioFigure(t *testing.T) {
	c := quickConfig()
	fig, err := c.SVTCombineRatio()
	if err != nil {
		t.Fatal(err)
	}
	emp, th := fig.Series[0], fig.Series[1]
	for i := range emp.Points {
		if emp.Points[i].Y <= 0 || emp.Points[i].Y > 1.3 {
			t.Fatalf("k=%v: empirical ratio %v implausible (theory %v)",
				emp.Points[i].X, emp.Points[i].Y, th.Points[i].Y)
		}
	}
}

func TestDatasetStatsTable(t *testing.T) {
	c := quickConfig()
	rows, err := c.DatasetStatsTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Records <= 0 || r.Items <= 0 || r.MeanLength <= 0 {
			t.Fatalf("implausible stats row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteDatasetStats(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BMS-POS") {
		t.Fatal("rendered table missing dataset name")
	}
}

func TestTieProbabilityFigure(t *testing.T) {
	c := quickConfig()
	c.Trials = 400
	fig, err := c.TieProbability()
	if err != nil {
		t.Fatal(err)
	}
	emp, bound := fig.Series[0], fig.Series[1]
	for i := range emp.Points {
		if emp.Points[i].Y < 0 || emp.Points[i].Y > 1 {
			t.Fatalf("tie rate %v out of range", emp.Points[i].Y)
		}
		// The Appendix A.1 bound must dominate the empirical rate (up to
		// Monte-Carlo noise) whenever it is informative (< 1).
		if bound.Points[i].Y < 1 && emp.Points[i].Y > bound.Points[i].Y+0.1 {
			t.Fatalf("empirical tie rate %v exceeds bound %v", emp.Points[i].Y, bound.Points[i].Y)
		}
	}
}

func TestLemma5CoverageFigure(t *testing.T) {
	c := quickConfig()
	fig, err := c.Lemma5Coverage()
	if err != nil {
		t.Fatal(err)
	}
	nominal, observed := fig.Series[0], fig.Series[1]
	for i := range nominal.Points {
		// Observed coverage should not fall far below nominal. (It is usually
		// above nominal because conditioning on answering inflates gaps.)
		if observed.Points[i].Y < nominal.Points[i].Y-0.12 {
			t.Fatalf("nominal %v: observed coverage only %v", nominal.Points[i].Y, observed.Points[i].Y)
		}
	}
}

func TestPrivacyAuditRows(t *testing.T) {
	c := quickConfig()
	c.Trials = 500 // audit multiplies this internally up to its 40k floor
	rows, err := c.PrivacyAudit()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 audited mechanisms, got %d", len(rows))
	}
	for _, r := range rows {
		if r.EpsilonHat > r.Epsilon+0.3 {
			t.Fatalf("%s: empirical epsilon %v far above configured %v", r.Mechanism, r.EpsilonHat, r.Epsilon)
		}
	}
	var buf bytes.Buffer
	if err := WritePrivacyAudit(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "epsilon-hat") {
		t.Fatal("audit table missing header")
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	fig := Figure{
		ID: "toy", Title: "Toy", XLabel: "k", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{1, 11}, {2, 21}}},
		},
	}
	var tbl, csv bytes.Buffer
	if err := WriteTable(&tbl, fig); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "Toy") || !strings.Contains(tbl.String(), "20") {
		t.Fatalf("table output missing content:\n%s", tbl.String())
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV should have header + 2 rows, got %d lines", len(lines))
	}
	if lines[0] != "k,a,b" {
		t.Fatalf("CSV header %q", lines[0])
	}
	// A series missing a point renders as an empty cell, not a crash.
	fig.Series[1].Points = fig.Series[1].Points[:1]
	var partial bytes.Buffer
	if err := WriteCSV(&partial, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(partial.String(), "2,20,") {
		t.Fatalf("missing-point row malformed:\n%s", partial.String())
	}
}
