package experiment

import (
	"fmt"

	"github.com/freegap/freegap/internal/baseline"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/postprocess"
	"github.com/freegap/freegap/internal/rng"
)

// svtSelectMeasureTrial runs one trial of the Section 6.2 protocol on the
// given counting-query answers: spend ε/2 on Sparse-Vector-with-Gap to select
// up to k above-threshold queries, spend ε/2 on fresh Laplace measurements of
// the selected queries, and compare the measurement-only squared error against
// the gap-combined squared error.
func svtSelectMeasureTrial(src *rng.Xoshiro, counts []float64, k int, eps float64) (baselineSE, improvedSE, n float64) {
	half := eps / 2
	threshold := dataset.RandomThreshold(src, counts, k)
	svt, err := core.NewSVTWithGap(k, half, threshold, true)
	if err != nil {
		return 0, 0, 0
	}
	res, err := svt.Run(src, counts)
	if err != nil || res.AboveCount == 0 {
		return 0, 0, 0
	}
	gapEstimates, gapVariances, indices := res.GapEstimates()

	meas, err := baseline.NewLaplaceMechanism(half, 1)
	if err != nil {
		return 0, 0, 0
	}
	measurements, err := meas.MeasureSelected(src, counts, indices)
	if err != nil {
		return 0, 0, 0
	}
	measVariance := meas.MeasurementVariance(len(indices))

	for i, idx := range indices {
		truth := counts[idx]
		d := measurements[i] - truth
		baselineSE += d * d
		combined, _, err := postprocess.CombineByInverseVariance(
			measurements[i], measVariance, gapEstimates[i], gapVariances[i])
		if err != nil {
			continue
		}
		d = combined - truth
		improvedSE += d * d
		n++
	}
	return baselineSE, improvedSE, n
}

// topKSelectMeasureTrial runs one trial of the Section 5.2 protocol: spend ε/2
// on Noisy-Top-K-with-Gap, spend ε/2 on Laplace measurements of the selected
// queries, and compare measurement-only squared error against the BLUE that
// also uses the gaps.
func topKSelectMeasureTrial(src *rng.Xoshiro, counts []float64, k int, eps float64) (baselineSE, improvedSE, n float64) {
	half := eps / 2
	topk, err := core.NewTopKWithGap(k, half, true)
	if err != nil {
		return 0, 0, 0
	}
	res, err := topk.Run(src, counts)
	if err != nil {
		return 0, 0, 0
	}
	indices := res.Indices()
	// BLUE consumes the k−1 adjacent gaps among the selected queries; the k-th
	// gap (against the runner-up outside the selection) is not used here.
	var gaps []float64
	if k > 1 {
		gaps = res.Gaps()[:k-1]
	}

	meas, err := baseline.NewLaplaceMechanism(half, 1)
	if err != nil {
		return 0, 0, 0
	}
	measurements, err := meas.MeasureSelected(src, counts, indices)
	if err != nil {
		return 0, 0, 0
	}
	measVariance := meas.MeasurementVariance(k)

	estimates, err := postprocess.BLUEFromVariances(measurements, gaps, measVariance, res.PerQueryNoiseVariance())
	if err != nil {
		return 0, 0, 0
	}
	for i, idx := range indices {
		truth := counts[idx]
		d := measurements[i] - truth
		baselineSE += d * d
		d = estimates[i] - truth
		improvedSE += d * d
		n++
	}
	return baselineSE, improvedSE, n
}

// improvementSweep evaluates percent MSE improvement for each x value of a
// sweep, where trial produces (baselineSE, improvedSE, count) contributions.
func (c Config) improvementSweep(xs []float64, trial func(src *rng.Xoshiro, x float64) (float64, float64, float64)) []Point {
	points := make([]Point, 0, len(xs))
	for i, x := range xs {
		x := x
		sums := runTrials(c.Trials, c.Seed+uint64(1000*(i+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
			b, imp, n := trial(src, x)
			return map[string]float64{"baseline": b, "improved": imp, "n": n}
		})
		if sums["n"] == 0 || sums["baseline"] == 0 {
			points = append(points, Point{X: x, Y: 0})
			continue
		}
		baseMSE := sums["baseline"] / sums["n"]
		impMSE := sums["improved"] / sums["n"]
		points = append(points, Point{X: x, Y: 100 * (baseMSE - impMSE) / baseMSE})
	}
	return points
}

// Fig1a regenerates Figure 1a: percent MSE improvement of
// Sparse-Vector-with-Gap with Measures over the gap-free baseline on the
// BMS-POS workload, as a function of k, at ε = Config.Epsilon, together with
// the theoretical expectation from Section 6.2.
func (c Config) Fig1a() (Figure, error) {
	c = c.withDefaults()
	w, err := c.BuildWorkload(workloadBMSPOS)
	if err != nil {
		return Figure{}, err
	}
	return c.svtImprovementByK(w, "fig1a")
}

func (c Config) svtImprovementByK(w Workload, id string) (Figure, error) {
	xs := make([]float64, len(c.Ks))
	for i, k := range c.Ks {
		xs[i] = float64(k)
	}
	empirical := c.improvementSweep(xs, func(src *rng.Xoshiro, x float64) (float64, float64, float64) {
		return svtSelectMeasureTrial(src, w.Counts, int(x), c.effectiveEpsilon(c.Epsilon))
	})
	theory := make([]Point, len(c.Ks))
	for i, k := range c.Ks {
		theory[i] = Point{X: float64(k), Y: postprocess.SVTExpectedImprovementPercent(k, true)}
	}
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("Sparse-Vector-with-Gap with Measures, %s, eps=%.2g", w.Name, c.Epsilon),
		XLabel: "k",
		YLabel: "% improvement in MSE",
		Series: []Series{
			{Name: "Sparse Vector with Measures", Points: empirical},
			{Name: "Theoretical Expected Improvement", Points: theory},
		},
	}, nil
}

// Fig1b regenerates Figure 1b: percent MSE improvement of
// Noisy-Top-K-with-Gap with Measures on the BMS-POS workload as a function of
// k, with the Corollary 1 theoretical curve.
func (c Config) Fig1b() (Figure, error) {
	c = c.withDefaults()
	w, err := c.BuildWorkload(workloadBMSPOS)
	if err != nil {
		return Figure{}, err
	}
	return c.topKImprovementByK(w, "fig1b")
}

func (c Config) topKImprovementByK(w Workload, id string) (Figure, error) {
	xs := make([]float64, len(c.Ks))
	for i, k := range c.Ks {
		xs[i] = float64(k)
	}
	empirical := c.improvementSweep(xs, func(src *rng.Xoshiro, x float64) (float64, float64, float64) {
		return topKSelectMeasureTrial(src, w.Counts, int(x), c.effectiveEpsilon(c.Epsilon))
	})
	theory := make([]Point, len(c.Ks))
	for i, k := range c.Ks {
		theory[i] = Point{X: float64(k), Y: postprocess.TopKExpectedImprovementPercent(k, 1)}
	}
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("Noisy-Top-K-with-Gap with Measures, %s, eps=%.2g", w.Name, c.Epsilon),
		XLabel: "k",
		YLabel: "% improvement in MSE",
		Series: []Series{
			{Name: "Noisy Top-K with Measures", Points: empirical},
			{Name: "Theoretical Expected Improvement", Points: theory},
		},
	}, nil
}

// Fig2a regenerates Figure 2a: the Sparse-Vector-with-Gap improvement on the
// Kosarak workload as a function of ε at k = Config.FixedK.
func (c Config) Fig2a() (Figure, error) {
	c = c.withDefaults()
	w, err := c.BuildWorkload(workloadKosarak)
	if err != nil {
		return Figure{}, err
	}
	empirical := c.improvementSweep(c.Epsilons, func(src *rng.Xoshiro, x float64) (float64, float64, float64) {
		return svtSelectMeasureTrial(src, w.Counts, c.FixedK, c.effectiveEpsilon(x))
	})
	theory := make([]Point, len(c.Epsilons))
	for i, e := range c.Epsilons {
		theory[i] = Point{X: e, Y: postprocess.SVTExpectedImprovementPercent(c.FixedK, true)}
	}
	return Figure{
		ID:     "fig2a",
		Title:  fmt.Sprintf("Sparse-Vector-with-Gap with Measures, %s, k=%d", w.Name, c.FixedK),
		XLabel: "epsilon",
		YLabel: "% improvement in MSE",
		Series: []Series{
			{Name: "Sparse Vector with Measures", Points: empirical},
			{Name: "Theoretical Expected Improvement", Points: theory},
		},
	}, nil
}

// Fig2b regenerates Figure 2b: the Noisy-Top-K-with-Gap improvement on the
// Kosarak workload as a function of ε at k = Config.FixedK.
func (c Config) Fig2b() (Figure, error) {
	c = c.withDefaults()
	w, err := c.BuildWorkload(workloadKosarak)
	if err != nil {
		return Figure{}, err
	}
	empirical := c.improvementSweep(c.Epsilons, func(src *rng.Xoshiro, x float64) (float64, float64, float64) {
		return topKSelectMeasureTrial(src, w.Counts, c.FixedK, c.effectiveEpsilon(x))
	})
	theory := make([]Point, len(c.Epsilons))
	for i, e := range c.Epsilons {
		theory[i] = Point{X: e, Y: postprocess.TopKExpectedImprovementPercent(c.FixedK, 1)}
	}
	return Figure{
		ID:     "fig2b",
		Title:  fmt.Sprintf("Noisy-Top-K-with-Gap with Measures, %s, k=%d", w.Name, c.FixedK),
		XLabel: "epsilon",
		YLabel: "% improvement in MSE",
		Series: []Series{
			{Name: "Noisy Top-K with Measures", Points: empirical},
			{Name: "Theoretical Expected Improvement", Points: theory},
		},
	}, nil
}

// Corollary1 compares the empirical BLUE error-reduction ratio against the
// Corollary 1 prediction (1+λk)/(k+λk) with λ = 1, on a synthetic truth
// vector, for every k in Config.Ks.
func (c Config) Corollary1() (Figure, error) {
	c = c.withDefaults()
	empirical := make([]Point, 0, len(c.Ks))
	theory := make([]Point, 0, len(c.Ks))
	for i, k := range c.Ks {
		k := k
		truth := make([]float64, k)
		for j := range truth {
			truth[j] = 1000 - 10*float64(j)
		}
		const scale = 5.0
		sums := runTrials(c.Trials, c.Seed+uint64(7000*(i+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
			alpha := make([]float64, k)
			eta := make([]float64, k)
			for j := range alpha {
				alpha[j] = truth[j] + rng.Laplace(src, scale)
				eta[j] = rng.Laplace(src, scale)
			}
			gaps := make([]float64, k-1)
			for j := range gaps {
				gaps[j] = truth[j] + eta[j] - truth[j+1] - eta[j+1]
			}
			beta, err := postprocess.BLUE(alpha, gaps, 1)
			if err != nil {
				return nil
			}
			var blueSE, measSE float64
			for j := range truth {
				blueSE += (beta[j] - truth[j]) * (beta[j] - truth[j])
				measSE += (alpha[j] - truth[j]) * (alpha[j] - truth[j])
			}
			return map[string]float64{"blue": blueSE, "meas": measSE}
		})
		ratio := 0.0
		if sums["meas"] > 0 {
			ratio = sums["blue"] / sums["meas"]
		}
		empirical = append(empirical, Point{X: float64(k), Y: ratio})
		theory = append(theory, Point{X: float64(k), Y: postprocess.ErrorReductionRatio(k, 1)})
	}
	return Figure{
		ID:     "corollary1",
		Title:  "Corollary 1: BLUE error-reduction ratio (lambda=1)",
		XLabel: "k",
		YLabel: "E|beta-q|^2 / E|alpha-q|^2",
		Series: []Series{
			{Name: "Empirical", Points: empirical},
			{Name: "Corollary 1", Points: theory},
		},
	}, nil
}

// SVTCombineRatio compares the empirical error ratio of the Section 6.2
// combine-with-measurement estimator against its theoretical value for every
// k in Config.Ks, on the BMS-POS workload.
func (c Config) SVTCombineRatio() (Figure, error) {
	c = c.withDefaults()
	w, err := c.BuildWorkload(workloadBMSPOS)
	if err != nil {
		return Figure{}, err
	}
	empirical := make([]Point, 0, len(c.Ks))
	theory := make([]Point, 0, len(c.Ks))
	for i, k := range c.Ks {
		k := k
		sums := runTrials(c.Trials, c.Seed+uint64(9000*(i+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
			b, imp, n := svtSelectMeasureTrial(src, w.Counts, k, c.effectiveEpsilon(c.Epsilon))
			return map[string]float64{"baseline": b, "improved": imp, "n": n}
		})
		ratio := 0.0
		if sums["baseline"] > 0 {
			ratio = sums["improved"] / sums["baseline"]
		}
		empirical = append(empirical, Point{X: float64(k), Y: ratio})
		theory = append(theory, Point{X: float64(k), Y: postprocess.SVTErrorReductionRatio(k, true)})
	}
	return Figure{
		ID:     "svt-combine-ratio",
		Title:  "Section 6.2: SVT gap-combined error ratio (monotonic queries)",
		XLabel: "k",
		YLabel: "E|beta-q|^2 / E|alpha-q|^2",
		Series: []Series{
			{Name: "Empirical", Points: empirical},
			{Name: "Theory", Points: theory},
		},
	}, nil
}
